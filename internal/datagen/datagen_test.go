package datagen

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/tokenize"
	"github.com/retrodb/retro/internal/vec"
)

func TestWordMakerUnique(t *testing.T) {
	m := newWordMaker(rand.New(rand.NewSource(1)))
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		w := m.make()
		if seen[w] {
			t.Fatalf("duplicate word %q", w)
		}
		seen[w] = true
		if len(w) < 4 {
			t.Fatalf("word too short: %q", w)
		}
	}
}

func TestVocabTopicsAndPools(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	v := NewVocab(16, rng)
	a := v.Topic("a")
	if len(a) != 16 {
		t.Fatalf("topic dim = %d", len(a))
	}
	if &v.Topic("a")[0] != &a[0] {
		t.Fatal("Topic should be cached")
	}
	words := v.Pool("p", "a", 50, 0.2, 0)
	if len(words) != 50 {
		t.Fatalf("pool size = %d", len(words))
	}
	// Pool is cached.
	if len(v.Pool("p", "a", 99, 0.2, 0)) != 50 {
		t.Fatal("Pool should be cached")
	}
	// Pool words cluster around their topic.
	hits := 0
	for _, w := range words {
		if vw, ok := v.Store.VectorOf(w); ok {
			if vec.Cosine(vw, a) > 0.5 {
				hits++
			}
		}
	}
	if hits < 40 {
		t.Fatalf("only %d/50 pool words near topic", hits)
	}
}

func TestVocabOOVRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := NewVocab(8, rng)
	words := v.Pool("p", "t", 200, 0.2, 0.4)
	oov := 0
	for _, w := range words {
		if v.IsOOV(w) {
			if _, ok := v.Store.VectorOf(w); ok {
				t.Fatal("OOV word present in store")
			}
			oov++
		}
	}
	if oov < 50 || oov > 120 {
		t.Fatalf("OOV count = %d of 200 at rate 0.4", oov)
	}
}

func TestVocabPhrases(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	v := NewVocab(8, rng)
	p := v.AddPhrase([]string{"john", "wick"}, "t", 0.1)
	if p != "john_wick" {
		t.Fatalf("phrase = %q", p)
	}
	if _, ok := v.Store.VectorOf("john_wick"); !ok {
		t.Fatal("phrase missing from store")
	}
}

func TestMixedSentence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	v := NewVocab(8, rng)
	v.Pool("a", "ta", 10, 0.1, 0)
	v.Pool("b", "tb", 10, 0.1, 0)
	s := v.MixedSentence(50, []string{"a", "b"}, []float64{1, 1})
	if len(strings.Fields(s)) != 50 {
		t.Fatalf("sentence length = %d", len(strings.Fields(s)))
	}
}

func TestTMDBDeterministic(t *testing.T) {
	a := TMDB(TMDBConfig{Movies: 40, Seed: 9})
	b := TMDB(TMDBConfig{Movies: 40, Seed: 9})
	if a.DB.String() != b.DB.String() {
		t.Fatal("TMDB generation not deterministic")
	}
	if a.Embedding.Len() != b.Embedding.Len() {
		t.Fatal("embedding not deterministic")
	}
	c := TMDB(TMDBConfig{Movies: 40, Seed: 10})
	if a.DB.String() == c.DB.String() {
		t.Fatal("different seeds should differ")
	}
}

func TestTMDBSchemaShape(t *testing.T) {
	w := TMDB(TMDBConfig{Movies: 60, Seed: 1})
	// 8 base tables + 6 link tables.
	if w.DB.NumTables() != 14 {
		t.Fatalf("tables = %d", w.DB.NumTables())
	}
	if got := len(w.DB.LinkTables()); got != 6 {
		t.Fatalf("link tables = %d", got)
	}
	movies := w.DB.MustTable("movies")
	if movies.NumRows() != 60 {
		t.Fatalf("movies = %d", movies.NumRows())
	}
	// Referential integrity enforced during generation implies the world
	// is consistent; spot-check a join.
	res := w.DB.MustExec(`SELECT COUNT(*) FROM movies JOIN persons ON movies.director_id = persons.id`)
	if res.Rows[0][0].I != 60 {
		t.Fatalf("director join count = %v", res.Rows[0][0])
	}
}

func TestTMDBLanguageDistribution(t *testing.T) {
	w := TMDB(TMDBConfig{Movies: 800, Seed: 2})
	english := 0
	for _, lang := range w.MovieLanguage {
		if lang == "english" {
			english++
		}
	}
	frac := float64(english) / float64(len(w.MovieLanguage))
	// The Fig. 12a mode baseline sits at ~71%; our latent mix must land
	// in that neighbourhood.
	if frac < 0.60 || frac < 0.5 {
		t.Fatalf("english share = %v, want ≈0.6-0.8", frac)
	}
	if frac > 0.85 {
		t.Fatalf("english share = %v, too dominant", frac)
	}
}

func TestTMDBDirectorLabels(t *testing.T) {
	w := TMDB(TMDBConfig{Movies: 300, Seed: 3})
	us, other := 0, 0
	for _, isUS := range w.DirectorUS {
		if isUS {
			us++
		} else {
			other++
		}
	}
	if us == 0 || other == 0 {
		t.Fatalf("degenerate citizenship labels: us=%d other=%d", us, other)
	}
	// Labels must NOT leak into the database (external label source).
	for _, tbl := range w.DB.Tables() {
		for _, col := range tbl.Columns {
			if strings.Contains(col.Name, "citizen") {
				t.Fatal("citizenship column leaked into the DB")
			}
		}
	}
}

func TestTMDBExtractionAndTokenization(t *testing.T) {
	w := TMDB(TMDBConfig{Movies: 50, Seed: 4})
	ex, err := extract.FromDB(w.DB, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumValues() < 200 {
		t.Fatalf("too few text values: %s", ex.Stats())
	}
	if len(ex.Relations) == 0 {
		t.Fatal("no relations extracted")
	}
	// n:m relations via link tables must exist.
	hasNM := false
	for _, r := range ex.Relations {
		if r.Kind == extract.ManyToMany {
			hasNM = true
		}
	}
	if !hasNM {
		t.Fatal("no n:m relation groups")
	}
	// Tokenization should find vectors for most values but not all (OOV).
	tok := tokenize.New(w.Embedding)
	invocab, oov := 0, 0
	for _, val := range ex.Values {
		if _, ok := tok.InitialVector(val.Text); ok {
			invocab++
		} else {
			oov++
		}
	}
	if invocab == 0 || oov == 0 {
		t.Fatalf("degenerate OOV split: in=%d oov=%d", invocab, oov)
	}
	if float64(oov)/float64(invocab+oov) > 0.5 {
		t.Fatalf("too much OOV: %d/%d", oov, invocab+oov)
	}
}

func TestTMDBBudgetRelationalSignal(t *testing.T) {
	w := TMDB(TMDBConfig{Movies: 400, Seed: 5})
	// Budgets of movies sharing a company should vary less than budgets
	// overall (the company tier drives them).
	res := w.DB.MustExec(`
		SELECT movies.budget, movie_companies.company_id
		FROM movies JOIN movie_companies ON movies.id = movie_companies.movie_id`)
	byCompany := map[int64][]float64{}
	var all []float64
	for _, row := range res.Rows {
		b, _ := row[0].AsFloat()
		byCompany[row[1].I] = append(byCompany[row[1].I], b)
		all = append(all, b)
	}
	within := 0.0
	groups := 0
	for _, budgets := range byCompany {
		if len(budgets) < 3 {
			continue
		}
		within += vec.StdDev(budgets)
		groups++
	}
	within /= float64(groups)
	if within >= vec.StdDev(all)*0.8 {
		t.Fatalf("company does not constrain budget: within=%v overall=%v", within, vec.StdDev(all))
	}
}

func TestGooglePlayShape(t *testing.T) {
	w := GooglePlay(GooglePlayConfig{Apps: 80, Seed: 1})
	// 6 base tables + 1 link table.
	if w.DB.NumTables() != 7 {
		t.Fatalf("tables = %d", w.DB.NumTables())
	}
	if len(w.DB.LinkTables()) != 1 {
		t.Fatalf("link tables = %d", len(w.DB.LinkTables()))
	}
	if w.DB.MustTable("apps").NumRows() != 80 {
		t.Fatal("app count wrong")
	}
	if len(w.CategoryNames) != 33 {
		t.Fatalf("categories = %d", len(w.CategoryNames))
	}
	if len(w.AppCategory) != 80 {
		t.Fatalf("ground truth size = %d", len(w.AppCategory))
	}
	// Reviews exist and reference apps.
	res := w.DB.MustExec(`SELECT COUNT(*) FROM reviews JOIN apps ON reviews.app_id = apps.id`)
	if res.Rows[0][0].I < 80 {
		t.Fatalf("reviews = %v", res.Rows[0][0])
	}
}

func TestGooglePlayCategorySkewModest(t *testing.T) {
	w := GooglePlay(GooglePlayConfig{Apps: 1000, Seed: 2})
	counts := map[int]int{}
	for _, c := range w.AppCategory {
		counts[c]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	frac := float64(max) / 1000
	// Mode imputation must be poor (Fig. 12b) but not uniform-degenerate.
	if frac > 0.3 {
		t.Fatalf("mode class share = %v, too high", frac)
	}
	if len(counts) < 20 {
		t.Fatalf("only %d categories used", len(counts))
	}
}

func TestGooglePlayDeterministic(t *testing.T) {
	a := GooglePlay(GooglePlayConfig{Apps: 50, Seed: 3})
	b := GooglePlay(GooglePlayConfig{Apps: 50, Seed: 3})
	if a.DB.String() != b.DB.String() {
		t.Fatal("GooglePlay generation not deterministic")
	}
}

func TestGooglePlayExtractionWithImputationOptions(t *testing.T) {
	w := GooglePlay(GooglePlayConfig{Apps: 60, Seed: 4})
	// The Fig. 12b protocol: embeddings trained without the category
	// information and the genre relation.
	ex, err := extract.FromDB(w.DB, extract.Options{
		ExcludeColumns: []string{"categories.name", "genres.name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.CategoryByName("categories.name"); ok {
		t.Fatal("category column still present")
	}
	// Review text must still be reachable.
	if _, ok := ex.CategoryByName("reviews.text"); !ok {
		t.Fatal("reviews lost")
	}
}
