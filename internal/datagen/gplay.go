package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/reldb"
)

// GooglePlayConfig scales the synthetic app-store world.
type GooglePlayConfig struct {
	Apps       int     // default 300
	Categories int     // default 33, as in the dataset (§5.5.2)
	Dim        int     // default 50
	Seed       int64   // default 1
	OOV        float64 // default 0.3
	// ReviewSignal is the probability a review token comes from the app's
	// category pool — the pathway only FK-traversing methods can reach.
	ReviewSignal float64 // default 0.55
	// NameSignal is the (weak) category signal in the app name itself.
	NameSignal float64 // default 0.3
}

func (c GooglePlayConfig) withDefaults() GooglePlayConfig {
	if c.Apps <= 0 {
		c.Apps = 300
	}
	if c.Categories <= 0 {
		c.Categories = 33
	}
	if c.Dim <= 0 {
		c.Dim = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OOV <= 0 {
		c.OOV = 0.3
	}
	if c.ReviewSignal <= 0 {
		c.ReviewSignal = 0.7
	}
	if c.NameSignal <= 0 {
		c.NameSignal = 0.3
	}
	return c
}

// GooglePlayWorld bundles the generated app-store database with its
// embedding and ground truth.
type GooglePlayWorld struct {
	Config        GooglePlayConfig
	DB            *reldb.DB
	Embedding     *embed.Store
	CategoryNames []string
	// AppCategory is the imputation ground truth: app name -> category
	// index into CategoryNames.
	AppCategory map[string]int
}

// GooglePlay generates the synthetic app-store world per §5.1: an app
// table referencing category/pricing/age tables, an n:m genre relation
// (genres mirror categories), and a review table reachable only via FK —
// the pathway that lets RETRO beat single-table imputers on Fig. 12b.
func GooglePlay(cfg GooglePlayConfig) *GooglePlayWorld {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed + 7777))
	v := NewVocab(cfg.Dim, rng)
	w := &GooglePlayWorld{
		Config:      cfg,
		Embedding:   v.Store,
		AppCategory: make(map[string]int),
	}

	// --- Vocabulary -------------------------------------------------------
	v.Pool("general", "general", 300, 0.6, 0)
	v.Pool("sentiment", "sentiment", 60, 0.4, 0)
	v.Pool("app-filler", "apps", 120, 0.5, cfg.OOV)
	// Dimension-table values are everyday words with solid pre-trained
	// vectors (they all exist in e.g. the Google News set); anchoring
	// them keeps the hub nodes of the pricing/age relations from
	// collapsing onto the global mean during retrofitting.
	for _, word := range []string{"free", "paid", "everyone", "teen", "mature"} {
		v.AddWordAt(word, "dim:"+word, 0.05)
	}
	catNames := make([]string, cfg.Categories)
	for c := 0; c < cfg.Categories; c++ {
		topic := fmt.Sprintf("cat:%d", c)
		v.Pool("cat-words:"+topic, topic, 50, 0.3, 0)
		name := v.maker.make()
		catNames[c] = name
		v.AddWordAt(name, topic, 0.1)
	}
	w.CategoryNames = catNames

	// --- Schema -------------------------------------------------------------
	db := reldb.New()
	w.DB = db
	dim := func(table string, names []string) {
		mustCreate(db, table, []reldb.Column{
			{Name: "id", Type: reldb.KindInt, PrimaryKey: true},
			{Name: "name", Type: reldb.KindText},
		})
		for i, n := range names {
			mustInsert(db, table, reldb.Int(int64(i)), reldb.Text(n))
		}
	}
	dim("categories", catNames)
	dim("pricing", []string{"free", "paid"})
	dim("ages", []string{"everyone", "teen", "mature"})
	// Genres mirror categories with their own surface forms ("xyz games").
	genreNames := make([]string, cfg.Categories)
	for i, c := range catNames {
		genreNames[i] = c + " apps"
	}
	dim("genres", genreNames)

	mustCreate(db, "apps", []reldb.Column{
		{Name: "id", Type: reldb.KindInt, PrimaryKey: true},
		{Name: "name", Type: reldb.KindText},
		{Name: "category_id", Type: reldb.KindInt, FK: &reldb.ForeignKey{Table: "categories", Column: "id"}},
		{Name: "pricing_id", Type: reldb.KindInt, FK: &reldb.ForeignKey{Table: "pricing", Column: "id"}},
		{Name: "age_id", Type: reldb.KindInt, FK: &reldb.ForeignKey{Table: "ages", Column: "id"}},
	})
	mustCreate(db, "reviews", []reldb.Column{
		{Name: "id", Type: reldb.KindInt, PrimaryKey: true},
		{Name: "app_id", Type: reldb.KindInt, FK: &reldb.ForeignKey{Table: "apps", Column: "id"}},
		{Name: "text", Type: reldb.KindText},
	})
	mustCreate(db, "app_genres", []reldb.Column{
		{Name: "app_id", Type: reldb.KindInt, FK: &reldb.ForeignKey{Table: "apps", Column: "id"}},
		{Name: "genre_id", Type: reldb.KindInt, FK: &reldb.ForeignKey{Table: "genres", Column: "id"}},
	})

	// --- Apps ---------------------------------------------------------------
	// Mildly zipfian category popularity: mode imputation lands well below
	// the Fig. 12a language task but above uniform 1/33.
	weights := make([]float64, cfg.Categories)
	total := 0.0
	for c := range weights {
		weights[c] = 1.0 / float64(c+3)
		total += weights[c]
	}
	drawCat := func() int {
		u := rng.Float64() * total
		acc := 0.0
		for c, wt := range weights {
			acc += wt
			if u < acc {
				return c
			}
		}
		return cfg.Categories - 1
	}

	usedNames := map[string]bool{}
	reviewID := 0
	for a := 0; a < cfg.Apps; a++ {
		cat := drawCat()
		topic := fmt.Sprintf("cat:%d", cat)

		var name string
		for attempt := 0; ; attempt++ {
			n := 1 + rng.Intn(2)
			words := make([]string, n)
			for i := range words {
				if rng.Float64() < cfg.NameSignal {
					words[i] = v.PickFrom("cat-words:" + topic)
				} else {
					words[i] = v.PickFrom("app-filler")
				}
			}
			name = strings.Join(words, " ")
			if attempt >= 30 {
				// The word pools are fixed, so at large scales rejection
				// sampling saturates; force uniqueness with a serial suffix.
				name = fmt.Sprintf("%s %d", name, a)
			}
			if !usedNames[name] {
				usedNames[name] = true
				break
			}
		}
		w.AppCategory[name] = cat

		mustInsert(db, "apps",
			reldb.Int(int64(a)), reldb.Text(name),
			reldb.Int(int64(cat)), reldb.Int(int64(rng.Intn(2))), reldb.Int(int64(rng.Intn(3))))

		// Genre mirrors category 90% of the time.
		genre := cat
		if rng.Float64() >= 0.9 {
			genre = drawCat()
		}
		mustInsert(db, "app_genres", reldb.Int(int64(a)), reldb.Int(int64(genre)))

		// Reviews: 3-5 short category-flavoured texts (the real dataset
		// keeps only apps with at least one review and has dozens per
		// popular app; several reviews per app let their centroid denoise
		// the category signal, as in the original data).
		nr := 3 + rng.Intn(3)
		for r := 0; r < nr; r++ {
			text := v.MixedSentence(8+rng.Intn(8),
				[]string{"cat-words:" + topic, "sentiment", "general"},
				[]float64{cfg.ReviewSignal, 0.2, 1 - cfg.ReviewSignal - 0.2})
			mustInsert(db, "reviews", reldb.Int(int64(reviewID)), reldb.Int(int64(a)), reldb.Text(text))
			reviewID++
		}
	}
	return w
}
