package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/reldb"
)

// countrySpec fixes the latent geography: share of movie production,
// the country's primary language, and whether its citizens count as
// US-American for the Fig. 8 classification task.
type countrySpec struct {
	name  string
	lang  string
	share float64
	isUS  bool
}

var tmdbCountries = []countrySpec{
	{"usa", "english", 0.50, true},
	{"uk", "english", 0.12, false},
	{"canada", "english", 0.06, false},
	{"france", "french", 0.08, false},
	{"germany", "german", 0.06, false},
	{"japan", "japanese", 0.05, false},
	{"india", "hindi", 0.05, false},
	{"italy", "italian", 0.04, false},
	{"spain", "spanish", 0.04, false},
}

var tmdbLanguages = []string{"english", "french", "german", "japanese", "hindi", "italian", "spanish"}

const numGenres = 20

// TMDBConfig scales the synthetic TMDB-like world.
type TMDBConfig struct {
	Movies int     // default 300
	Dim    int     // embedding dimensionality (default 50)
	Seed   int64   // default 1
	OOV    float64 // fraction of name/title words withheld from the embedding (default 0.25)
	// CountryLoyalty is the probability a movie is produced in its
	// director's country (drives the relational citizenship signal).
	CountryLoyalty float64 // default 0.75
	// NameSignal is the probability a person name token comes from the
	// citizenship country's name pool (drives the textual signal).
	NameSignal float64 // default 0.65
}

func (c TMDBConfig) withDefaults() TMDBConfig {
	if c.Movies <= 0 {
		c.Movies = 300
	}
	if c.Dim <= 0 {
		c.Dim = 50
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.OOV <= 0 {
		c.OOV = 0.25
	}
	if c.CountryLoyalty <= 0 {
		c.CountryLoyalty = 0.75
	}
	if c.NameSignal <= 0 {
		c.NameSignal = 0.65
	}
	return c
}

// TMDBWorld bundles the generated database, the synthetic pre-trained
// embedding, and ground truth the experiments score against.
type TMDBWorld struct {
	Config    TMDBConfig
	DB        *reldb.DB
	Embedding *embed.Store

	// DirectorUS plays the role of the external Wikidata citizenship
	// labels of §5.5.1: director name -> is US-American. It is NOT stored
	// in the database.
	DirectorUS map[string]bool

	// Ground truth conveniences (all also derivable from the DB).
	MovieLanguage map[string]string   // title -> original language
	MovieGenres   map[string][]string // title -> genre names
	MovieBudget   map[string]float64  // title -> budget
	GenreNames    []string
}

// TMDB generates the synthetic movie world. Deterministic per config.
func TMDB(cfg TMDBConfig) *TMDBWorld {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	v := NewVocab(cfg.Dim, rng)
	w := &TMDBWorld{
		Config:        cfg,
		Embedding:     v.Store,
		DirectorUS:    make(map[string]bool),
		MovieLanguage: make(map[string]string),
		MovieGenres:   make(map[string][]string),
		MovieBudget:   make(map[string]float64),
	}

	// --- Vocabulary -----------------------------------------------------
	v.Pool("general", "general", 400, 0.6, 0)
	for _, lang := range tmdbLanguages {
		v.Pool("lang:"+lang, "lang:"+lang, 120, 0.25, 0)
		// The language's own name sits near its topic so that language
		// values carry geometry of their own.
		v.AddWordAt(lang, "lang:"+lang, 0.1)
	}
	genreNames := make([]string, numGenres)
	for g := 0; g < numGenres; g++ {
		topic := fmt.Sprintf("genre:%d", g)
		v.Pool("genre-words:"+topic, topic, 70, 0.3, 0)
		v.Pool("kw:"+topic, topic, 12, 0.25, 0)
		name := v.maker.make()
		genreNames[g] = name
		v.AddWordAt(name, topic, 0.1)
	}
	w.GenreNames = genreNames
	for _, c := range tmdbCountries {
		// A country's name vector leans toward its language topic: the
		// textual world is consistent with the latent geography.
		v.AddWordAt(c.name, "lang:"+c.lang, 0.35)
		v.Pool("first:"+c.name, "names:"+c.name, 30, 0.3, cfg.OOV)
		v.Pool("last:"+c.name, "names:"+c.name, 45, 0.3, cfg.OOV)
	}
	v.Pool("first:global", "names:global", 40, 0.45, cfg.OOV)
	v.Pool("last:global", "names:global", 60, 0.45, cfg.OOV)
	v.Pool("company-words", "companies", 80, 0.4, 0)
	v.Pool("title-filler", "general", 150, 0.5, cfg.OOV)

	// --- Schema ----------------------------------------------------------
	db := reldb.New()
	w.DB = db
	mustCreate(db, "countries", []reldb.Column{
		{Name: "id", Type: reldb.KindInt, PrimaryKey: true},
		{Name: "name", Type: reldb.KindText},
	})
	mustCreate(db, "languages", []reldb.Column{
		{Name: "id", Type: reldb.KindInt, PrimaryKey: true},
		{Name: "name", Type: reldb.KindText},
	})
	mustCreate(db, "genres", []reldb.Column{
		{Name: "id", Type: reldb.KindInt, PrimaryKey: true},
		{Name: "name", Type: reldb.KindText},
	})
	mustCreate(db, "companies", []reldb.Column{
		{Name: "id", Type: reldb.KindInt, PrimaryKey: true},
		{Name: "name", Type: reldb.KindText},
		{Name: "tier", Type: reldb.KindInt},
	})
	mustCreate(db, "keywords", []reldb.Column{
		{Name: "id", Type: reldb.KindInt, PrimaryKey: true},
		{Name: "word", Type: reldb.KindText},
	})
	mustCreate(db, "persons", []reldb.Column{
		{Name: "id", Type: reldb.KindInt, PrimaryKey: true},
		{Name: "name", Type: reldb.KindText},
	})
	mustCreate(db, "movies", []reldb.Column{
		{Name: "id", Type: reldb.KindInt, PrimaryKey: true},
		{Name: "title", Type: reldb.KindText},
		{Name: "overview", Type: reldb.KindText},
		{Name: "original_language", Type: reldb.KindText},
		{Name: "budget", Type: reldb.KindFloat},
		{Name: "revenue", Type: reldb.KindFloat},
		{Name: "popularity", Type: reldb.KindFloat},
		{Name: "director_id", Type: reldb.KindInt, FK: &reldb.ForeignKey{Table: "persons", Column: "id"}},
	})
	mustCreate(db, "reviews", []reldb.Column{
		{Name: "id", Type: reldb.KindInt, PrimaryKey: true},
		{Name: "movie_id", Type: reldb.KindInt, FK: &reldb.ForeignKey{Table: "movies", Column: "id"}},
		{Name: "text", Type: reldb.KindText},
	})
	link := func(name, colA, tableA, colB, tableB string) {
		mustCreate(db, name, []reldb.Column{
			{Name: colA, Type: reldb.KindInt, FK: &reldb.ForeignKey{Table: tableA, Column: "id"}},
			{Name: colB, Type: reldb.KindInt, FK: &reldb.ForeignKey{Table: tableB, Column: "id"}},
		})
	}
	link("movie_genres", "movie_id", "movies", "genre_id", "genres")
	link("movie_keywords", "movie_id", "movies", "keyword_id", "keywords")
	link("movie_countries", "movie_id", "movies", "country_id", "countries")
	link("movie_companies", "movie_id", "movies", "company_id", "companies")
	link("movie_actors", "movie_id", "movies", "person_id", "persons")
	link("movie_languages", "movie_id", "movies", "language_id", "languages")

	// --- Dimension tables -------------------------------------------------
	for i, c := range tmdbCountries {
		mustInsert(db, "countries", reldb.Int(int64(i)), reldb.Text(c.name))
	}
	for i, l := range tmdbLanguages {
		mustInsert(db, "languages", reldb.Int(int64(i)), reldb.Text(l))
	}
	for g, name := range genreNames {
		mustInsert(db, "genres", reldb.Int(int64(g)), reldb.Text(name))
	}
	numCompanies := maxInt(4, cfg.Movies/8)
	companyTier := make([]int, numCompanies)
	for i := 0; i < numCompanies; i++ {
		tier := 1 + rng.Intn(5)
		companyTier[i] = tier
		name := v.PickFrom("company-words") + " " + v.PickFrom("company-words")
		mustInsert(db, "companies", reldb.Int(int64(i)), reldb.Text(name), reldb.Int(int64(tier)))
	}
	keywordIDs := map[int][]int{} // genre -> keyword ids
	kwID := 0
	seenKW := map[string]int{}
	for g := 0; g < numGenres; g++ {
		pool := v.pools["kw:"+fmt.Sprintf("genre:%d", g)]
		for _, kw := range pool {
			id, ok := seenKW[kw]
			if !ok {
				id = kwID
				kwID++
				seenKW[kw] = id
				mustInsert(db, "keywords", reldb.Int(int64(id)), reldb.Text(kw))
			}
			keywordIDs[g] = append(keywordIDs[g], id)
		}
	}

	// --- Persons -----------------------------------------------------------
	// Directors outnumber movies/3 substantially (real TMDB has 9k
	// directors): most direct one or two movies, which keeps the Fig. 8
	// sampling pool large.
	numDirectors := maxInt(3, cfg.Movies*2/3)
	numActors := maxInt(5, cfg.Movies/2)
	personID := 0
	usedNames := map[string]bool{}
	mkPerson := func(country countrySpec) (int, string) {
		var name string
		for attempt := 0; ; attempt++ {
			first := v.PickFrom(pickNamePool(rng, "first", country.name, cfg.NameSignal))
			last := v.PickFrom(pickNamePool(rng, "last", country.name, cfg.NameSignal))
			name = first + " " + last
			if attempt >= 30 {
				// The first×last pair space is fixed, so at large scales
				// rejection sampling saturates; disambiguate with a serial
				// suffix instead of looping (coupon-collector) forever.
				name = fmt.Sprintf("%s %s %d", first, last, personID)
			}
			if !usedNames[name] {
				usedNames[name] = true
				// Some full names exist as phrases in the embedding.
				if rng.Float64() < 0.3 && !v.IsOOV(first) && !v.IsOOV(last) {
					v.AddPhrase([]string{first, last}, "names:"+country.name, 0.2)
				}
				break
			}
		}
		id := personID
		personID++
		mustInsert(db, "persons", reldb.Int(int64(id)), reldb.Text(name))
		return id, name
	}
	directorCountry := make([]countrySpec, numDirectors)
	directorIDs := make([]int, numDirectors)
	for d := 0; d < numDirectors; d++ {
		c := drawCountry(rng)
		id, name := mkPerson(c)
		directorCountry[d] = c
		directorIDs[d] = id
		w.DirectorUS[name] = c.isUS
	}
	actorIDs := make([]int, numActors)
	actorCountry := make([]countrySpec, numActors)
	for a := 0; a < numActors; a++ {
		c := drawCountry(rng)
		id, _ := mkPerson(c)
		actorIDs[a] = id
		actorCountry[a] = c
	}

	// --- Movies -----------------------------------------------------------
	usedTitles := map[string]bool{}
	reviewID := 0
	for m := 0; m < cfg.Movies; m++ {
		d := rng.Intn(numDirectors)
		dc := directorCountry[d]

		// Production countries.
		prodCountry := dc
		if rng.Float64() >= cfg.CountryLoyalty {
			prodCountry = drawCountry(rng)
		}
		// Original language.
		lang := prodCountry.lang
		if rng.Float64() >= 0.9 {
			lang = "english"
		}
		// Genres.
		nGenres := 1 + rng.Intn(3)
		gset := map[int]bool{}
		var genres []int
		for len(genres) < nGenres {
			g := rng.Intn(numGenres)
			if !gset[g] {
				gset[g] = true
				genres = append(genres, g)
			}
		}
		mainGenre := fmt.Sprintf("genre:%d", genres[0])

		// Title: unique, 1-3 words with genre flavour.
		var title string
		for attempt := 0; ; attempt++ {
			n := 1 + rng.Intn(3)
			words := make([]string, n)
			for i := range words {
				if rng.Float64() < 0.45 {
					words[i] = v.PickFrom("genre-words:" + mainGenre)
				} else {
					words[i] = v.PickFrom("title-filler")
				}
			}
			title = strings.Join(words, " ")
			if attempt >= 30 {
				// Same saturation guard as person names: the word pools are
				// fixed, so force uniqueness with a serial suffix.
				title = fmt.Sprintf("%s %d", title, m)
			}
			if !usedTitles[title] {
				usedTitles[title] = true
				if n > 1 && rng.Float64() < 0.15 {
					allKnown := true
					for _, word := range words {
						if v.IsOOV(word) {
							allKnown = false
							break
						}
					}
					if allKnown {
						v.AddPhrase(words, mainGenre, 0.2)
					}
				}
				break
			}
		}

		overview := v.MixedSentence(10+rng.Intn(7),
			[]string{"lang:" + lang, "genre-words:" + mainGenre, "general"},
			[]float64{0.3, 0.35, 0.35})

		// Company and budget: tier + country wealth dominate (relational
		// signal); text is uninformative.
		comp := rng.Intn(numCompanies)
		wealth := 1.0
		if prodCountry.isUS {
			wealth = 1.6
		}
		budget := (2 + 3*float64(companyTier[comp])) * 1e6 * wealth * (0.8 + 0.4*rng.Float64())
		revenue := budget * (0.5 + 2.5*rng.Float64())
		popularity := float64(companyTier[comp])*1.5 + 5*rng.Float64()

		mustInsert(db, "movies",
			reldb.Int(int64(m)), reldb.Text(title), reldb.Text(overview),
			reldb.Text(lang), reldb.Float(budget), reldb.Float(revenue),
			reldb.Float(popularity), reldb.Int(int64(directorIDs[d])))

		w.MovieLanguage[title] = lang
		w.MovieBudget[title] = budget
		for _, g := range genres {
			w.MovieGenres[title] = append(w.MovieGenres[title], genreNames[g])
			mustInsert(db, "movie_genres", reldb.Int(int64(m)), reldb.Int(int64(g)))
		}

		// Keywords (2-4 of the main genre's inventory).
		kws := keywordIDs[genres[0]]
		nk := 2 + rng.Intn(3)
		kseen := map[int]bool{}
		for i := 0; i < nk; i++ {
			id := kws[rng.Intn(len(kws))]
			if !kseen[id] {
				kseen[id] = true
				mustInsert(db, "movie_keywords", reldb.Int(int64(m)), reldb.Int(int64(id)))
			}
		}

		mustInsert(db, "movie_countries", reldb.Int(int64(m)), reldb.Int(int64(countryIndex(prodCountry.name))))
		mustInsert(db, "movie_companies", reldb.Int(int64(m)), reldb.Int(int64(comp)))

		// Spoken languages: the original plus sometimes english.
		mustInsert(db, "movie_languages", reldb.Int(int64(m)), reldb.Int(int64(langIndex(lang))))
		if lang != "english" && rng.Float64() < 0.4 {
			mustInsert(db, "movie_languages", reldb.Int(int64(m)), reldb.Int(int64(langIndex("english"))))
		}

		// Cast: 2-4 actors, biased toward the production country.
		na := 2 + rng.Intn(3)
		cast := map[int]bool{}
		for len(cast) < na {
			a := rng.Intn(numActors)
			if actorCountry[a].name != prodCountry.name && rng.Float64() < 0.5 {
				continue
			}
			if !cast[a] {
				cast[a] = true
				mustInsert(db, "movie_actors", reldb.Int(int64(m)), reldb.Int(int64(actorIDs[a])))
			}
		}

		// Reviews: 0-2, language-flavoured.
		nr := rng.Intn(3)
		for r := 0; r < nr; r++ {
			text := v.MixedSentence(8+rng.Intn(7),
				[]string{"lang:" + lang, "genre-words:" + mainGenre, "general"},
				[]float64{0.45, 0.2, 0.35})
			mustInsert(db, "reviews", reldb.Int(int64(reviewID)), reldb.Int(int64(m)), reldb.Text(text))
			reviewID++
		}
	}
	return w
}

func pickNamePool(rng *rand.Rand, kind, country string, signal float64) string {
	if rng.Float64() < signal {
		return kind + ":" + country
	}
	return kind + ":global"
}

func drawCountry(rng *rand.Rand) countrySpec {
	u := rng.Float64()
	acc := 0.0
	for _, c := range tmdbCountries {
		acc += c.share
		if u < acc {
			return c
		}
	}
	return tmdbCountries[0]
}

func countryIndex(name string) int {
	for i, c := range tmdbCountries {
		if c.name == name {
			return i
		}
	}
	return 0
}

func langIndex(name string) int {
	for i, l := range tmdbLanguages {
		if l == name {
			return i
		}
	}
	return 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func mustCreate(db *reldb.DB, name string, cols []reldb.Column) {
	if _, err := db.CreateTable(name, cols); err != nil {
		panic(fmt.Sprintf("datagen: %v", err))
	}
}

func mustInsert(db *reldb.DB, table string, values ...reldb.Value) {
	if _, err := db.Insert(table, values); err != nil {
		panic(fmt.Sprintf("datagen: %v", err))
	}
}
