package embed

import (
	"testing"

	"github.com/retrodb/retro/internal/ann"
)

func TestParseQuantMode(t *testing.T) {
	for _, s := range []string{"", "off", "none"} {
		m, err := ParseQuantMode(s)
		if err != nil || m != QuantOff {
			t.Fatalf("ParseQuantMode(%q) = (%q, %v)", s, m, err)
		}
	}
	if m, err := ParseQuantMode("sq8"); err != nil || m != QuantSQ8 {
		t.Fatalf("ParseQuantMode(sq8) = (%q, %v)", m, err)
	}
	if _, err := ParseQuantMode("pq16"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestEnableQuantizationQuantizesBuiltIndex(t *testing.T) {
	s := randomStore(300, 16, 21)
	s.EnableANN(100, ann.Params{EfSearch: 300})
	s.WarmANN()
	if s.ANNIndex().Quantized() {
		t.Fatal("index quantized before EnableQuantization")
	}
	s.EnableQuantization(QuantSQ8, 6)
	if s.ANNIndex().Quantized() {
		t.Fatal("conversion should be lazy (no query yet)")
	}
	s.WarmANN() // reconcile
	idx := s.ANNIndex()
	if !idx.Quantized() || idx.Rerank() != 6 {
		t.Fatalf("after WarmANN: quantized=%v rerank=%d", idx.Quantized(), idx.Rerank())
	}
	mode, rerank := s.Quantization()
	if mode != QuantSQ8 || rerank != 6 {
		t.Fatalf("Quantization() = (%q, %d)", mode, rerank)
	}

	// Disable converts back on the next reconcile.
	s.EnableQuantization("off", 0)
	s.WarmANN()
	if s.ANNIndex().Quantized() {
		t.Fatal("index still quantized after disabling")
	}
}

// TestQuantizedTopKMatchesExactOnWideBeam mirrors the unquantized ANN
// routing test: with a beam covering the whole store the quantized path
// (re-ranked exactly) must reproduce TopKExact result-for-result,
// scores included.
func TestQuantizedTopKMatchesExactOnWideBeam(t *testing.T) {
	s := randomStore(300, 8, 22)
	s.EnableANN(100, ann.Params{EfSearch: 300})
	s.EnableQuantization(QuantSQ8, 30)
	q := s.Vector(42)
	got := s.TopK(q, 5, func(id int) bool { return id == 42 })
	if idx := s.ANNIndex(); idx == nil || !idx.Quantized() {
		t.Fatal("quantized index not built above threshold")
	}
	want := s.TopKExact(q, 5, func(id int) bool { return id == 42 })
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Word != want[i].Word {
			t.Fatalf("rank %d: got %+v, want %+v", i, got[i], want[i])
		}
		// Scores come from the float64 re-rank, so they agree with the
		// exact scan to rounding (the ANN path normalises query and vector
		// before the dot, the scan divides after it — last-ulp territory).
		if diff := got[i].Score - want[i].Score; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("rank %d: quantized score %v != exact %v (re-ranking must be exact)",
				i, got[i].Score, want[i].Score)
		}
	}
}

func TestQuantizedAddAfterBuildIsSearchable(t *testing.T) {
	s := randomStore(300, 8, 23)
	s.EnableANN(100, ann.Params{EfSearch: 300})
	s.EnableQuantization(QuantSQ8, 0)
	probe := s.Vector(99)
	s.TopK(probe, 3, nil) // build + quantize
	if !s.ANNIndex().Quantized() {
		t.Fatal("index not quantized")
	}
	v := make([]float64, 8)
	copy(v, probe)
	s.Add("fresh", v)
	found := false
	for _, m := range s.TopK(probe, 2, nil) {
		if m.Word == "fresh" {
			found = true
		}
	}
	if !found {
		t.Fatal("vector added after quantization not returned")
	}
}

// TestFreezeSharesQuantizedIndexCOW: a frozen snapshot keeps serving the
// quantized graph it was frozen with while the live store mutates, and a
// quantization-mode change after the freeze converts a clone, never the
// shared index.
func TestFreezeSharesQuantizedIndexCOW(t *testing.T) {
	s := randomStore(400, 8, 24)
	s.EnableANN(100, ann.Params{EfSearch: 400})
	s.EnableQuantization(QuantSQ8, 4)
	s.WarmANN()
	f := s.Freeze()
	frozenIdx := f.ANNIndex()
	if frozenIdx == nil || !frozenIdx.Quantized() {
		t.Fatal("freeze did not materialise the quantized index")
	}
	if mode, _ := f.Quantization(); mode != QuantSQ8 {
		t.Fatalf("frozen Quantization() mode = %q", mode)
	}
	q := f.Vector(7)
	before := f.TopK(q, 5, nil)

	// Live store: disable quantization and mutate. The frozen view must
	// keep its quantized graph and its answers.
	s.EnableQuantization("off", 0)
	s.WarmANN()
	if s.ANNIndex() == frozenIdx {
		t.Fatal("reconcile mutated the index shared with the frozen view")
	}
	if !frozenIdx.Quantized() {
		t.Fatal("frozen view's index was de-quantized in place")
	}
	v := make([]float64, 8)
	v[0] = 1
	s.Add("newcomer", v)
	after := f.TopK(q, 5, nil)
	if len(before) != len(after) {
		t.Fatalf("frozen view changed: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("frozen view rank %d changed: %+v vs %+v", i, before[i], after[i])
		}
	}
}

func TestTuneRerank(t *testing.T) {
	s := randomStore(300, 8, 25)
	s.EnableANN(100, ann.Params{})
	s.EnableQuantization(QuantSQ8, 4)
	s.WarmANN()
	f := s.Freeze()
	s.TuneRerank(9)
	if got := s.ANNIndex().Rerank(); got != 9 {
		t.Fatalf("live rerank = %d, want 9", got)
	}
	if got := f.ANNIndex().Rerank(); got != 4 {
		t.Fatalf("frozen snapshot rerank changed to %d", got)
	}
	if _, r := s.Quantization(); r != 9 {
		t.Fatalf("Quantization() rerank = %d, want 9", r)
	}
}

func TestCloneCarriesQuantConfig(t *testing.T) {
	s := randomStore(300, 8, 26)
	s.EnableANN(100, ann.Params{})
	s.EnableQuantization(QuantSQ8, 5)
	c := s.Clone()
	c.WarmANN()
	idx := c.ANNIndex()
	if idx == nil || !idx.Quantized() || idx.Rerank() != 5 {
		t.Fatal("clone did not inherit quantization config")
	}
}

func TestAdoptANNSyncsQuantState(t *testing.T) {
	s := randomStore(300, 8, 27)
	s.EnableANN(100, ann.Params{})
	s.WarmANN()
	donor := s.ANNIndex().Clone()
	donor.QuantizeSQ8(7)

	fresh := randomStore(300, 8, 27)
	fresh.EnableANN(100, ann.Params{})
	if err := fresh.AdoptANN(donor); err != nil {
		t.Fatal(err)
	}
	mode, rerank := fresh.Quantization()
	if mode != QuantSQ8 || rerank != 7 {
		t.Fatalf("adopted quant state = (%q, %d), want (sq8, 7)", mode, rerank)
	}
	// The next reconcile must keep the adopted quantization, not strip it.
	fresh.WarmANN()
	if !fresh.ANNIndex().Quantized() {
		t.Fatal("reconcile stripped the adopted index's quantization")
	}
}
