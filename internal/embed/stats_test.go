package embed

import (
	"testing"

	"github.com/retrodb/retro/internal/ann"
)

// TestTopKAppendStatsANNPath checks the stats passthrough on the ANN
// path: identical results to TopKAppend, traversal counters filled.
func TestTopKAppendStatsANNPath(t *testing.T) {
	s := randomStore(3000, 16, 5)
	s.EnableANN(1000, ann.DefaultParams())
	s.WarmANN()
	if s.ANNIndex() == nil {
		t.Fatal("ANN index not built")
	}
	q := s.Vector(42)

	plain := s.TopKAppend(q, 10, nil, nil)
	var st ann.SearchStats
	stats := s.TopKAppendStats(q, 10, nil, nil, &st)

	if len(plain) != len(stats) {
		t.Fatalf("result length mismatch: %d vs %d", len(plain), len(stats))
	}
	for i := range plain {
		if plain[i] != stats[i] {
			t.Fatalf("result %d: %+v vs %+v", i, plain[i], stats[i])
		}
	}
	if st.Hops <= 0 || st.Nodes <= 0 || st.WalkNs <= 0 {
		t.Fatalf("traversal stats not filled: %+v", st)
	}
}

// TestTopKAppendStatsExactFallback checks the exact-scan path reports
// the scan as the walk stage with every row counted as a node.
func TestTopKAppendStatsExactFallback(t *testing.T) {
	s := randomStore(100, 8, 9) // below the ANN threshold
	if s.ANNIndex() != nil {
		t.Fatal("unexpected ANN index on a small store")
	}
	var st ann.SearchStats
	got := s.TopKAppendStats(s.Vector(3), 5, nil, nil, &st)
	if len(got) != 5 {
		t.Fatalf("got %d results, want 5", len(got))
	}
	if st.Nodes != s.Len() {
		t.Fatalf("Nodes = %d, want %d", st.Nodes, s.Len())
	}
	if st.WalkNs <= 0 {
		t.Fatalf("WalkNs = %d, want > 0", st.WalkNs)
	}
	if st.Hops != 0 || st.Reranked != 0 || st.Quantized {
		t.Fatalf("exact scan filled graph-only fields: %+v", st)
	}
}

// TestTopKAppendStatsZeroAlloc guards the frozen-store instrumented
// query path at zero allocations per call.
func TestTopKAppendStatsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	s := randomStore(3000, 16, 13)
	s.EnableANN(1000, ann.DefaultParams())
	s.WarmANN()
	s.Freeze()
	q := s.Vector(7)
	dst := make([]Match, 0, 16)
	var st ann.SearchStats
	dst = s.TopKAppendStats(q, 10, nil, dst, &st) // warm the pools
	allocs := testing.AllocsPerRun(200, func() {
		dst = s.TopKAppendStats(q, 10, nil, dst[:0], &st)
	})
	if allocs != 0 {
		t.Fatalf("TopKAppendStats allocated %.2f times per call, want 0", allocs)
	}
}
