package embed

import (
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/ann"
)

func benchQuery(dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	q := make([]float64, dim)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	return q
}

// BenchmarkTopKExactAppend is the exact-scan inner loop with
// caller-owned storage: expect 0 allocs/op once the norm cache is warm.
func BenchmarkTopKExactAppend(b *testing.B) {
	s := randomStore(10000, 32, 3)
	s.DisableANN()
	f := s.Freeze()
	q := benchQuery(32, 7)
	buf := make([]Match, 0, 10)
	buf = f.TopKExactAppend(q, 10, nil, buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = f.TopKExactAppend(q, 10, nil, buf)
	}
}

// BenchmarkTopKAppendANN is the approximate path end to end (dispatch,
// HNSW beam search, id->word resolution): expect 0 allocs/op with warm
// scratch pools.
func BenchmarkTopKAppendANN(b *testing.B) {
	s := randomStore(10000, 32, 5)
	s.EnableANN(1, ann.Params{})
	s.WarmANN()
	f := s.Freeze()
	q := benchQuery(32, 9)
	buf := make([]Match, 0, 10)
	buf = f.TopKAppend(q, 10, nil, buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = f.TopKAppend(q, 10, nil, buf)
	}
}
