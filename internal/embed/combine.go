package embed

import (
	"fmt"

	"github.com/retrodb/retro/internal/vec"
)

// CombineMode selects how two embedding sets are merged per word (§4.6).
type CombineMode int

const (
	// Concat places the two vectors side by side (dim = dimA + dimB). The
	// paper settles on concatenation after testing several combiners.
	Concat CombineMode = iota
	// Average requires equal dimensionality and averages the two vectors;
	// kept as the ablation alternative discussed in §4.6.
	Average
)

func (m CombineMode) String() string {
	switch m {
	case Concat:
		return "concat"
	case Average:
		return "average"
	default:
		return fmt.Sprintf("CombineMode(%d)", int(m))
	}
}

// Combine merges two stores over the vocabulary of a. Words of a missing
// from b get a zero vector for b's part, matching the null-vector OOV
// convention of §3.1. Words only in b are dropped (the retrofitted
// vocabulary drives downstream tasks).
func Combine(a, b *Store, mode CombineMode) (*Store, error) {
	switch mode {
	case Concat:
		out := NewStore(a.Dim() + b.Dim())
		buf := make([]float64, a.Dim()+b.Dim())
		rowBuf := make([]float64, a.Dim())
		for id, word := range a.words {
			vec.Zero(buf)
			copy(buf[:a.Dim()], a.rowWide(rowBuf, id))
			if vb, ok := b.VectorOf(word); ok {
				copy(buf[a.Dim():], vb)
			}
			out.Add(word, buf)
		}
		return out, nil
	case Average:
		if a.Dim() != b.Dim() {
			return nil, fmt.Errorf("embed: Average requires equal dims, got %d and %d", a.Dim(), b.Dim())
		}
		out := NewStore(a.Dim())
		buf := make([]float64, a.Dim())
		rowBuf := make([]float64, a.Dim())
		for id, word := range a.words {
			copy(buf, a.rowWide(rowBuf, id))
			if vb, ok := b.VectorOf(word); ok {
				vec.Axpy(buf, 1, vb)
				vec.Scale(buf, 0.5)
			}
			out.Add(word, buf)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("embed: unknown combine mode %v", mode)
	}
}
