package embed

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/ann"
)

// batchStore builds a store with n Gaussian vectors, optionally pushed
// over the ANN threshold (threshold 0 keeps the exact path).
func batchStore(t testing.TB, n, dim int, annThreshold int, quantize bool) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	s := NewStore(dim)
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		s.Add(fmt.Sprintf("w%04d", i), v)
	}
	if annThreshold > 0 {
		s.EnableANN(annThreshold, ann.Params{EfSearch: 48, Seed: 3})
		if quantize {
			s.EnableQuantization(QuantSQ8, 3)
		}
		s.WarmANN()
	} else {
		s.DisableANN()
	}
	return s
}

func assertStoreBatchMatchesLoop(t *testing.T, s *Store, queries [][]float64, ks []int, skip func(qi, id int) bool) {
	t.Helper()
	got := s.TopKManyAppend(queries, ks, skip, nil)
	if len(got) != len(queries) {
		t.Fatalf("TopKMany returned %d sets for %d queries", len(got), len(queries))
	}
	for qi := range queries {
		var single func(id int) bool
		if skip != nil {
			qi := qi
			single = func(id int) bool { return skip(qi, id) }
		}
		want := s.TopK(queries[qi], ks[qi], single)
		if len(got[qi]) != len(want) {
			t.Fatalf("query %d: batch %d matches, single %d", qi, len(got[qi]), len(want))
		}
		for i := range want {
			if got[qi][i] != want[i] {
				t.Fatalf("query %d match %d: batch %+v, single %+v", qi, i, got[qi][i], want[i])
			}
		}
	}
}

// TestStoreTopKManyMatchesLoop covers all three routing modes of the
// store-level batch path: ANN exact, ANN quantized, and the brute-force
// fallback below the threshold — each must agree with looped TopK
// exactly, including word resolution.
func TestStoreTopKManyMatchesLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const dim = 24
	queries := make([][]float64, 13)
	for i := range queries {
		queries[i] = make([]float64, dim)
		for j := range queries[i] {
			queries[i][j] = rng.NormFloat64()
		}
	}
	ks := make([]int, len(queries))
	for i := range ks {
		ks[i] = []int{10, 1, 3, 0, 9999}[i%5]
	}
	skip := func(qi, id int) bool { return id%5 == qi%5 }
	cases := []struct {
		name      string
		threshold int
		quantize  bool
	}{
		{"ann-exact", 16, false},
		{"ann-quantized", 16, true},
		{"exact-fallback", 0, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := batchStore(t, 600, dim, c.threshold, c.quantize)
			assertStoreBatchMatchesLoop(t, s, queries, ks, nil)
			assertStoreBatchMatchesLoop(t, s, queries, ks, skip)
		})
	}
}

// TestStoreTopKManyFrozenView: the serving layer batches against frozen
// snapshots; the direct-pointer queryANN read must work batched too.
func TestStoreTopKManyFrozenView(t *testing.T) {
	s := batchStore(t, 600, 24, 16, true)
	f := s.Freeze()
	rng := rand.New(rand.NewSource(41))
	queries := make([][]float64, 9)
	for i := range queries {
		queries[i] = make([]float64, 24)
		for j := range queries[i] {
			queries[i][j] = rng.NormFloat64()
		}
	}
	ks := make([]int, len(queries))
	for i := range ks {
		ks[i] = 10
	}
	assertStoreBatchMatchesLoop(t, f, queries, ks, nil)
}

// TestStoreTopKManyStats: the aggregate stats must flow up from the
// index on the ANN path and be synthesised on the exact fallback.
func TestStoreTopKManyStats(t *testing.T) {
	queries := [][]float64{make([]float64, 24), make([]float64, 24)}
	for i := range queries {
		for j := range queries[i] {
			queries[i][j] = float64(i*24+j%7) + 1
		}
	}
	ks := []int{5, 5}

	t.Run("ann", func(t *testing.T) {
		s := batchStore(t, 600, 24, 16, true)
		var st ann.SearchStats
		s.TopKManyAppendStats(queries, ks, nil, nil, &st)
		if st.Hops == 0 || st.Nodes == 0 || !st.Quantized || st.Reranked == 0 {
			t.Fatalf("unexpected ANN batch stats: %+v", st)
		}
	})
	t.Run("exact", func(t *testing.T) {
		s := batchStore(t, 100, 24, 0, false)
		var st ann.SearchStats
		s.TopKManyAppendStats(queries, ks, nil, nil, &st)
		if st.Nodes != 2*s.Len() {
			t.Fatalf("exact fallback Nodes=%d, want %d", st.Nodes, 2*s.Len())
		}
		if st.Hops != 0 || st.Quantized {
			t.Fatalf("exact fallback stats: %+v", st)
		}
	})
}

// TestStoreTopKManyZeroAlloc guards the serving steady state end to
// end: warm pools, caller-owned storage, no allocation per batch.
func TestStoreTopKManyZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	s := batchStore(t, 2000, 24, 16, true)
	f := s.Freeze()
	rng := rand.New(rand.NewSource(43))
	queries := make([][]float64, 16)
	for i := range queries {
		queries[i] = make([]float64, 24)
		for j := range queries[i] {
			queries[i][j] = rng.NormFloat64()
		}
	}
	ks := make([]int, len(queries))
	for i := range ks {
		ks[i] = 10
	}
	dst := make([][]Match, len(queries))
	for i := range dst {
		dst[i] = make([]Match, 0, 16)
	}
	var st ann.SearchStats
	dst = f.TopKManyAppendStats(queries, ks, nil, dst, &st) // warm pools
	allocs := testing.AllocsPerRun(50, func() {
		dst = f.TopKManyAppendStats(queries, ks, nil, dst, &st)
	})
	if allocs != 0 {
		t.Fatalf("store TopKMany allocated %.2f times per batch, want 0", allocs)
	}
}

// TestStoreTopKManyPanics: API-contract guards.
func TestStoreTopKManyPanics(t *testing.T) {
	s := batchStore(t, 10, 4, 0, false)
	for name, call := range map[string]func(){
		"ks mismatch":  func() { s.TopKManyAppend([][]float64{make([]float64, 4)}, nil, nil, nil) },
		"dim mismatch": func() { s.TopKManyAppend([][]float64{make([]float64, 3)}, []int{5}, nil, nil) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			call()
		})
	}
}
