package embed

import (
	"slices"
	"testing"
)

// TestEpochStampingMutators: every mutator class stamps the rows it
// touches with the current epoch, and ChangedSince windows follow
// AdvanceEpoch.
func TestEpochStampingMutators(t *testing.T) {
	s := NewStore(2)
	a := s.Add("a", []float64{1, 0})
	b := s.Add("b", []float64{0, 1})
	if got := s.ChangedSince(0); !slices.Equal(got, []int{a, b}) {
		t.Fatalf("ChangedSince(0) on a fresh store = %v", got)
	}

	if e := s.AdvanceEpoch(); e != 1 || s.Epoch() != 1 {
		t.Fatalf("AdvanceEpoch = %d, Epoch = %d", e, s.Epoch())
	}
	if got := s.ChangedSince(1); len(got) != 0 {
		t.Fatalf("nothing changed in epoch 1 yet, got %v", got)
	}

	// Each mutator stamps at the current epoch.
	s.SetVector(a, []float64{2, 0})
	if got := s.ChangedSince(1); !slices.Equal(got, []int{a}) {
		t.Fatalf("SetVector did not stamp: %v", got)
	}
	s.AdvanceEpoch()
	c := s.Add("c", []float64{1, 1})
	if got := s.ChangedSince(2); !slices.Equal(got, []int{c}) {
		t.Fatalf("Add did not stamp: %v", got)
	}
	s.AdvanceEpoch()
	d := s.AddStaged("d", []float64{1, 2})
	s.RefreshRow(b)
	if got := s.ChangedSince(3); !slices.Equal(got, []int{b, d}) {
		t.Fatalf("AddStaged/RefreshRow did not stamp: %v", got)
	}
	// A closed window keeps its rows; the next window starts empty.
	s.AdvanceEpoch()
	if got := s.ChangedSince(3); !slices.Equal(got, []int{b, d}) {
		t.Fatalf("closed window lost rows: %v", got)
	}
	if got := s.ChangedSince(4); len(got) != 0 {
		t.Fatalf("new window not empty: %v", got)
	}
	s.NormalizeAll()
	if got := s.ChangedSince(4); len(got) != s.Len() {
		t.Fatalf("NormalizeAll stamped %d of %d rows", len(got), s.Len())
	}
}

// TestEpochMissingStampsAreDurable: a store deserialised straight from a
// snapshot has no row stamps; those rows must count as stamped at 0 —
// they came from durable state and are unchanged relative to any later
// epoch — while rows mutated afterwards are stamped normally.
func TestEpochMissingStampsAreDurable(t *testing.T) {
	s := NewStore(2)
	a := s.Add("a", []float64{1, 0})
	b := s.Add("b", []float64{0, 1})
	s.rowEpochs = nil // as after deserialisation: values without stamps
	s.SetEpoch(7)
	if got := s.ChangedSince(1); len(got) != 0 {
		t.Fatalf("unstamped rows reported changed: %v", got)
	}
	if got := s.ChangedSince(0); len(got) != s.Len() {
		t.Fatalf("ChangedSince(0) must cover everything, got %v", got)
	}
	s.RefreshRow(a)
	if got := s.ChangedSince(7); !slices.Equal(got, []int{a}) {
		t.Fatalf("post-recovery mutation not stamped: %v", got)
	}
	// b, beyond the stamped prefix, still counts as durable.
	if got := s.ChangedSince(1); !slices.Equal(got, []int{a}) {
		t.Fatalf("unstamped tail row reported changed: %v", got)
	}
	// Touching past the gap backfills conservatively at the current
	// epoch: over-capture into the next segment, never data loss.
	c := s.Add("c", []float64{1, 1})
	if got := s.ChangedSince(7); !slices.Equal(got, []int{a, b, c}) {
		t.Fatalf("backfilled stamps = %v", got)
	}
}

// TestEpochStampAll covers the conservative path a full model rebuild
// takes: everything is marked changed in the current epoch.
func TestEpochStampAll(t *testing.T) {
	s := NewStore(2)
	s.Add("a", []float64{1, 0})
	s.Add("b", []float64{0, 1})
	s.SetEpoch(3)
	s.StampAll()
	if got := s.ChangedSince(3); len(got) != 2 {
		t.Fatalf("StampAll stamped %d rows", len(got))
	}
}

// TestEpochFrozenPanics: epoch mutators follow the store's freeze
// discipline.
func TestEpochFrozenPanics(t *testing.T) {
	s := NewStore(2)
	s.Add("a", []float64{1, 0})
	f := s.Freeze()
	for name, fn := range map[string]func(){
		"AdvanceEpoch": func() { f.AdvanceEpoch() },
		"SetEpoch":     func() { f.SetEpoch(9) },
		"StampAll":     func() { f.StampAll() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a frozen store did not panic", name)
				}
			}()
			fn()
		}()
	}
}
