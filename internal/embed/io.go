package embed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Text format: one "word v1 v2 ... vD" line per entry, the layout used by
// GloVe and word2vec text exports. Binary format: a compact custom layout
// (magic, dim, count, then length-prefixed words followed by float64s).

// WriteText serialises the store in the word2vec/GloVe text layout.
func (s *Store) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	rowBuf := make([]float64, s.dim)
	for id, word := range s.words {
		if strings.ContainsAny(word, " \n") {
			return fmt.Errorf("embed: word %q contains whitespace; text format cannot represent it", word)
		}
		if _, err := bw.WriteString(word); err != nil {
			return err
		}
		for _, v := range s.rowWide(rowBuf, id) {
			if _, err := bw.WriteString(" " + strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the word2vec/GloVe text layout. The dimensionality is
// inferred from the first line; all lines must agree.
func ReadText(r io.Reader) (*Store, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var store *Store
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("embed: line %d: need word plus at least one value", lineNo)
		}
		word := fields[0]
		values := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("embed: line %d: bad value %q: %w", lineNo, f, err)
			}
			values[i] = v
		}
		if store == nil {
			store = NewStore(len(values))
		} else if len(values) != store.Dim() {
			return nil, fmt.Errorf("embed: line %d: dim %d != %d", lineNo, len(values), store.Dim())
		}
		store.Add(word, values)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, fmt.Errorf("embed: empty input")
	}
	return store, nil
}

const binaryMagic = "RETROEMB1"

// WriteBinary serialises the store in the compact binary layout.
func (s *Store) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(s.dim))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(s.words)))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8)
	rowBuf := make([]float64, s.dim)
	for id, word := range s.words {
		binary.LittleEndian.PutUint32(buf[:4], uint32(len(word)))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
		if _, err := bw.WriteString(word); err != nil {
			return err
		}
		for _, v := range s.rowWide(rowBuf, id) {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the layout produced by WriteBinary.
func ReadBinary(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("embed: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("embed: bad magic %q", magic)
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("embed: reading header: %w", err)
	}
	dim := int(binary.LittleEndian.Uint64(hdr[0:8]))
	count := int(binary.LittleEndian.Uint64(hdr[8:16]))
	if dim <= 0 || dim > 1<<20 || count < 0 {
		return nil, fmt.Errorf("embed: implausible header dim=%d count=%d", dim, count)
	}
	store := NewStore(dim)
	buf := make([]byte, 8)
	vecBuf := make([]float64, dim)
	for i := 0; i < count; i++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("embed: entry %d: %w", i, err)
		}
		wordLen := int(binary.LittleEndian.Uint32(buf[:4]))
		if wordLen < 0 || wordLen > 1<<20 {
			return nil, fmt.Errorf("embed: entry %d: implausible word length %d", i, wordLen)
		}
		wordBytes := make([]byte, wordLen)
		if _, err := io.ReadFull(br, wordBytes); err != nil {
			return nil, fmt.Errorf("embed: entry %d: %w", i, err)
		}
		for j := 0; j < dim; j++ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, fmt.Errorf("embed: entry %d value %d: %w", i, j, err)
			}
			vecBuf[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
		store.Add(string(wordBytes), vecBuf)
	}
	return store, nil
}
