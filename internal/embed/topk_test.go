package embed

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/retrodb/retro/internal/ann"
	"github.com/retrodb/retro/internal/vec"
)

// naiveTopK is the reference the heap-based TopKExact is checked
// against: score every row, sort, truncate.
func naiveTopK(s *Store, query []float64, k int, skip func(int) bool) []Match {
	if k <= 0 {
		return nil
	}
	qn := vec.Norm(query)
	if qn == 0 {
		return nil
	}
	var all []Match
	for id := 0; id < s.Len(); id++ {
		if skip != nil && skip(id) {
			continue
		}
		r := s.Vector(id)
		rn := vec.Norm(r)
		if rn == 0 {
			continue
		}
		all = append(all, Match{ID: id, Word: s.Word(id), Score: vec.Dot(query, r) / (qn * rn)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// TestTopKExactMatchesReference drives the bounded-heap scan against the
// naive reference over randomised stores, including quantised vectors
// that force score ties, zero rows and skip filters.
func TestTopKExactMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		dim := 2 + rng.Intn(4)
		n := 1 + rng.Intn(60)
		s := NewStore(dim)
		for i := 0; i < n; i++ {
			v := make([]float64, dim)
			if rng.Intn(10) > 0 { // leave ~10% of rows zero
				for j := range v {
					// Quantised coordinates make exact score ties common.
					v[j] = float64(rng.Intn(3) - 1)
				}
			}
			s.Add(fmt.Sprintf("w%03d", i), v)
		}
		q := make([]float64, dim)
		for j := range q {
			q[j] = float64(rng.Intn(3) - 1)
		}
		if vec.Norm(q) == 0 {
			q[0] = 1
		}
		var skip func(int) bool
		if trial%3 == 0 {
			skip = func(id int) bool { return id%5 == 0 }
		}
		for _, k := range []int{-1, 0, 1, 2, n / 2, n, n + 10} {
			got := s.TopKExact(q, k, skip)
			want := naiveTopK(s, q, k, skip)
			if len(got) != len(want) {
				t.Fatalf("trial %d k=%d: %d results, want %d", trial, k, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score || got[i].Word != want[i].Word {
					t.Fatalf("trial %d k=%d rank %d: got %+v want %+v", trial, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestTopKExactNormCacheFollowsMutations ensures the cached row norms
// stay correct through Add, SetVector, RefreshRow and NormalizeAll.
func TestTopKExactNormCacheFollowsMutations(t *testing.T) {
	s := NewStore(2)
	s.Add("a", []float64{1, 0})
	s.Add("b", []float64{0, 1})
	q := []float64{1, 0}
	if got := s.TopKExact(q, 1, nil); got[0].Word != "a" {
		t.Fatalf("got %+v", got)
	}
	// Overwrite through SetVector: the cache must follow. A stale norm
	// (still 1 from the original unit vector) would report a cosine of
	// 10 for the new row instead of ~0.99995.
	idB, _ := s.ID("b")
	s.SetVector(idB, []float64{10, 0.1})
	got := s.TopKExact(q, 2, nil)
	for _, m := range got {
		if m.Word == "b" && (m.Score > 1 || m.Score < 0.999) {
			t.Fatalf("stale norm after SetVector: %+v", m)
		}
	}
	// Mutate in place through the matrix + RefreshRow.
	idA, _ := s.ID("a")
	row := s.Matrix().Row(idA)
	row[0], row[1] = 0, 0 // zero rows are skipped by the scan
	s.RefreshRow(idA)
	got = s.TopKExact(q, 2, nil)
	if len(got) != 1 || got[0].Word != "b" {
		t.Fatalf("after RefreshRow: %+v", got)
	}
	// New rows extend the cache.
	s.Add("c", []float64{2, 0})
	got = s.TopKExact(q, 3, nil)
	if len(got) != 2 || got[0].Word != "c" && got[1].Word != "c" {
		t.Fatalf("after Add: %+v", got)
	}
	s.NormalizeAll()
	got = s.TopKExact(q, 2, nil)
	if len(got) != 2 {
		t.Fatalf("after NormalizeAll: %+v", got)
	}
	for _, m := range got {
		if m.Score < -1.0001 || m.Score > 1.0001 {
			t.Fatalf("cosine out of range after NormalizeAll: %+v", m)
		}
	}
}

// TestTopKClampParity pins the satellite fix: both the ANN and the exact
// branch of Store.TopK agree on boundary k values — nil for k <= 0 and a
// vocabulary-size clamp for oversized k — instead of the exact path
// clamping and the ANN path forwarding raw k.
func TestTopKClampParity(t *testing.T) {
	const n, dim = 300, 8
	rng := rand.New(rand.NewSource(11))
	build := func() *Store {
		s := NewStore(dim)
		for i := 0; i < n; i++ {
			v := make([]float64, dim)
			for j := range v {
				v[j] = rng.NormFloat64()
			}
			s.Add(fmt.Sprintf("w%04d", i), v)
		}
		return s
	}
	exact := build()
	exact.DisableANN()
	approx := build()
	approx.EnableANN(1, ann.Params{}) // force the HNSW branch
	q := make([]float64, dim)
	q[0] = 1

	for _, k := range []int{-5, 0, 1, 10, n - 1, n, n + 1, 100 * n} {
		ge := exact.TopK(q, k, nil)
		ga := approx.TopK(q, k, nil)
		wantLen := k
		if k < 0 {
			wantLen = 0
		}
		if wantLen > n {
			wantLen = n
		}
		if len(ge) != wantLen {
			t.Fatalf("exact branch k=%d: %d results, want %d", k, len(ge), wantLen)
		}
		if len(ga) != wantLen {
			t.Fatalf("ann branch k=%d: %d results, want %d", k, len(ga), wantLen)
		}
	}
}
