package embed

import (
	"math"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/ann"
)

// pairedStores builds an F64 and an F32 store with identical
// float32-rounded content, so any behavioural difference is purely the
// storage representation.
func pairedStores(t testing.TB, n, dim int) (*Store, *Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	s64 := NewStore(dim)
	s32 := NewStoreWithPrecision(dim, F32)
	v := make([]float64, dim)
	for i := 0; i < n; i++ {
		for d := range v {
			v[d] = float64(float32(rng.NormFloat64()))
		}
		w := word(i)
		s64.Add(w, v)
		s32.Add(w, v)
	}
	return s64, s32
}

func TestF32StoreExactScanMatchesF64(t *testing.T) {
	const n, dim, k = 500, 40, 10
	s64, s32 := pairedStores(t, n, dim)
	rng := rand.New(rand.NewSource(23))
	q := make([]float64, dim)
	for qi := 0; qi < 30; qi++ {
		for d := range q {
			q[d] = rng.NormFloat64()
		}
		r64 := s64.TopKExact(q, k, nil)
		r32 := s32.TopKExact(q, k, nil)
		if len(r64) != len(r32) {
			t.Fatalf("query %d: %d vs %d results", qi, len(r64), len(r32))
		}
		for i := range r64 {
			// The f32 scan rounds the query and the cached norms once
			// each; scores stay within ~1e-6 relative and the ranking is
			// stable away from exact ties.
			if d := math.Abs(r64[i].Score - r32[i].Score); d > 1e-5 {
				t.Fatalf("query %d rank %d: score %g vs %g", qi, i, r64[i].Score, r32[i].Score)
			}
		}
	}
	// Widened vector round-trips exactly: the store rounded once on Add.
	id, _ := s32.ID(word(3))
	w64 := s32.Vector(id)
	w32 := s32.Vector32(id)
	for d := range w64 {
		if w64[d] != float64(w32[d]) {
			t.Fatalf("Vector/Vector32 mismatch at %d", d)
		}
	}
}

func TestF32StoreANNAndFreeze(t *testing.T) {
	const n, dim, k = 600, 32, 10
	s64, s32 := pairedStores(t, n, dim)
	for _, s := range []*Store{s64, s32} {
		s.EnableANN(100, ann.Params{})
		s.EnableQuantization(QuantSQ8, 0)
	}
	f64v := s64.Freeze()
	f32v := s32.Freeze()
	if !f32v.Frozen() || f32v.Precision() != F32 {
		t.Fatal("frozen f32 view lost its precision")
	}
	rng := rand.New(rand.NewSource(29))
	q := make([]float64, dim)
	total, matched := 0, 0
	for qi := 0; qi < 40; qi++ {
		for d := range q {
			q[d] = rng.NormFloat64()
		}
		r64 := f64v.TopK(q, k, nil)
		r32 := f32v.TopK(q, k, nil)
		total += len(r64)
		seen := map[int]bool{}
		for _, m := range r64 {
			seen[m.ID] = true
		}
		for _, m := range r32 {
			if seen[m.ID] {
				matched++
			}
		}
	}
	if float64(matched) < 0.99*float64(total) {
		t.Fatalf("f32/f64 ANN overlap %d/%d below 99%%", matched, total)
	}

	// Copy-on-write: mutate the live f32 store, the frozen view must not
	// move.
	id, _ := s32.ID(word(0))
	before := f32v.Vector(id)
	repl := make([]float64, dim)
	repl[0] = 42
	s32.SetVector(id, repl)
	after := f32v.Vector(id)
	for d := range before {
		if before[d] != after[d] {
			t.Fatal("frozen f32 view changed under a live-store write")
		}
	}
	if got := s32.Vector(id); got[0] != 42 {
		t.Fatalf("live store write lost: %v", got[0])
	}
}

func TestF32StoreCloneAndNormalize(t *testing.T) {
	_, s32 := pairedStores(t, 50, 16)
	cp := s32.Clone()
	if cp.Precision() != F32 || cp.Len() != s32.Len() {
		t.Fatalf("clone precision %v len %d", cp.Precision(), cp.Len())
	}
	s32.NormalizeAll()
	for id := range s32.words {
		r := s32.Vector32(id)
		var n float64
		for _, x := range r {
			n += float64(x) * float64(x)
		}
		if math.Abs(math.Sqrt(n)-1) > 1e-6 {
			t.Fatalf("row %d norm %g after NormalizeAll", id, math.Sqrt(n))
		}
		// The clone kept the pre-normalisation rows.
		if cv := cp.Vector32(id); cv[0] == r[0] && cv[1] == r[1] && cv[2] == r[2] {
			// Equal prefixes are possible only if the row was already unit;
			// tolerate but don't require difference.
			_ = cv
		}
	}
}

// The footprint guard of the float32 serving store: with the ANN graph
// built and quantized, total resident payload must be at most 55% of
// the float64 store's over the same content (the matrix and graph rows
// halve; codes and adjacency are precision-invariant).
func TestF32FootprintAtMost55Percent(t *testing.T) {
	const n, dim = 2000, 64
	s64, s32 := pairedStores(t, n, dim)
	for _, s := range []*Store{s64, s32} {
		s.EnableANN(100, ann.Params{})
		s.EnableQuantization(QuantSQ8, 0)
		s.WarmANN()
	}
	ms64 := s64.MemoryStats()
	ms32 := s32.MemoryStats()
	if ms32.MatrixBytes*2 != ms64.MatrixBytes {
		t.Fatalf("matrix bytes %d vs %d, want exactly half", ms32.MatrixBytes, ms64.MatrixBytes)
	}
	if ms32.GraphVecBytes*2 != ms64.GraphVecBytes {
		t.Fatalf("graph vector bytes %d vs %d, want exactly half", ms32.GraphVecBytes, ms64.GraphVecBytes)
	}
	if ms32.CodeBytes != ms64.CodeBytes {
		t.Fatalf("code bytes %d vs %d, want equal", ms32.CodeBytes, ms64.CodeBytes)
	}
	// The acceptance guard: resident vector payload (matrix + norm cache +
	// graph rows) at most 55% of the f64 store's. Codes and adjacency are
	// precision-invariant and excluded; the total must still shrink.
	res32 := ms32.MatrixBytes + ms32.NormBytes + ms32.GraphVecBytes
	res64 := ms64.MatrixBytes + ms64.NormBytes + ms64.GraphVecBytes
	if res32*100 > res64*55 {
		t.Fatalf("f32 vector payload %d bytes is %.1f%% of f64's %d bytes, want <= 55%%",
			res32, 100*float64(res32)/float64(res64), res64)
	}
	if ms32.TotalBytes >= ms64.TotalBytes {
		t.Fatalf("f32 total %d not below f64 total %d", ms32.TotalBytes, ms64.TotalBytes)
	}
}
