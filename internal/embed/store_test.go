package embed

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

func TestAddLookup(t *testing.T) {
	s := NewStore(3)
	id := s.Add("movie", []float64{1, 2, 3})
	if id != 0 {
		t.Fatalf("first id = %d, want 0", id)
	}
	if s.Len() != 1 || s.Dim() != 3 {
		t.Fatal("Len/Dim wrong")
	}
	v, ok := s.VectorOf("movie")
	if !ok || v[1] != 2 {
		t.Fatal("VectorOf failed")
	}
	if s.Word(0) != "movie" {
		t.Fatal("Word failed")
	}
	if _, ok := s.ID("nope"); ok {
		t.Fatal("missing word found")
	}
}

func TestAddOverwrite(t *testing.T) {
	s := NewStore(2)
	s.Add("a", []float64{1, 1})
	id := s.Add("a", []float64{9, 9})
	if id != 0 || s.Len() != 1 {
		t.Fatal("overwrite created new entry")
	}
	if s.Vector(0)[0] != 9 {
		t.Fatal("overwrite did not replace vector")
	}
}

func TestAddDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore(2).Add("x", []float64{1})
}

func TestGrowthManyWords(t *testing.T) {
	s := NewStore(4)
	rng := rand.New(rand.NewSource(5))
	vecs := make([][]float64, 500)
	for i := range vecs {
		vecs[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		s.Add(word(i), vecs[i])
	}
	for i := range vecs {
		got, ok := s.VectorOf(word(i))
		if !ok {
			t.Fatalf("word %d missing", i)
		}
		for j := range got {
			if got[j] != vecs[i][j] {
				t.Fatalf("word %d vector corrupted after growth", i)
			}
		}
	}
	if s.Matrix().Rows != 500 {
		t.Fatalf("matrix rows = %d", s.Matrix().Rows)
	}
}

func word(i int) string {
	return "w" + strings.Repeat("x", i%3) + string(rune('a'+i%26)) + itoa(i)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestSetVectorAndMatrixView(t *testing.T) {
	s := NewStore(2)
	s.Add("a", []float64{1, 2})
	s.SetVector(0, []float64{5, 6})
	if s.Vector(0)[0] != 5 {
		t.Fatal("SetVector failed")
	}
	m := s.Matrix()
	m.Row(0)[0] = 42
	if s.Vector(0)[0] != 42 {
		t.Fatal("Matrix should be a live view")
	}
}

func TestClone(t *testing.T) {
	s := NewStore(2)
	s.Add("a", []float64{1, 2})
	c := s.Clone()
	c.SetVector(0, []float64{9, 9})
	if s.Vector(0)[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestNormalizeAll(t *testing.T) {
	s := NewStore(2)
	s.Add("a", []float64{3, 4})
	s.Add("zero", []float64{0, 0})
	s.NormalizeAll()
	if math.Abs(vec.Norm(s.Vector(0))-1) > 1e-12 {
		t.Fatal("not normalised")
	}
	if !vec.IsZero(s.Vector(1)) {
		t.Fatal("zero vector should stay zero")
	}
}

func TestTopK(t *testing.T) {
	s := NewStore(2)
	s.Add("east", []float64{1, 0})
	s.Add("northeast", []float64{1, 1})
	s.Add("north", []float64{0, 1})
	s.Add("west", []float64{-1, 0})
	s.Add("null", []float64{0, 0})

	got := s.TopK([]float64{1, 0.1}, 2, nil)
	if len(got) != 2 || got[0].Word != "east" || got[1].Word != "northeast" {
		t.Fatalf("TopK = %+v", got)
	}
	if got[0].Score < got[1].Score {
		t.Fatal("scores not descending")
	}
}

func TestTopKSkipAndZeroQuery(t *testing.T) {
	s := NewStore(2)
	s.Add("a", []float64{1, 0})
	s.Add("b", []float64{1, 0})
	got := s.TopK([]float64{1, 0}, 5, func(id int) bool { return id == 0 })
	if len(got) != 1 || got[0].Word != "b" {
		t.Fatalf("skip failed: %+v", got)
	}
	if s.TopK([]float64{0, 0}, 3, nil) != nil {
		t.Fatal("zero query should return nil")
	}
	if s.TopK([]float64{1, 0}, 0, nil) != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestTopKDeterministicTieBreak(t *testing.T) {
	s := NewStore(2)
	s.Add("t0", []float64{1, 0})
	s.Add("t1", []float64{1, 0})
	s.Add("t2", []float64{2, 0}) // same cosine as t0/t1
	got := s.TopK([]float64{1, 0}, 2, nil)
	if got[0].ID != 0 || got[1].ID != 1 {
		t.Fatalf("tie-break not by ascending id: %+v", got)
	}
}

func TestAnalogy(t *testing.T) {
	s := NewStore(2)
	s.Add("king", []float64{1, 1})
	s.Add("man", []float64{1, 0})
	s.Add("woman", []float64{0.9, 0.05})
	s.Add("queen", []float64{0.9, 1})
	got, err := s.Analogy("king", "man", "woman", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Word != "queen" {
		t.Fatalf("Analogy = %+v", got)
	}
	if _, err := s.Analogy("king", "man", "missing", 1); err == nil {
		t.Fatal("expected error for missing term")
	}
}

func TestTextRoundTrip(t *testing.T) {
	s := NewStore(3)
	s.Add("alpha", []float64{1.5, -2.25, 0})
	s.Add("beta_gamma", []float64{0.125, 3, -1})
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Dim() != 3 {
		t.Fatal("round-trip shape wrong")
	}
	v, _ := got.VectorOf("beta_gamma")
	if v[0] != 0.125 || v[2] != -1 {
		t.Fatalf("round-trip values wrong: %v", v)
	}
}

func TestWriteTextRejectsWhitespaceWords(t *testing.T) {
	s := NewStore(1)
	s.Add("two words", []float64{1})
	if err := s.WriteText(&bytes.Buffer{}); err == nil {
		t.Fatal("expected error for word containing space")
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, err := ReadText(strings.NewReader("")); err == nil {
		t.Fatal("empty input should error")
	}
	if _, err := ReadText(strings.NewReader("word\n")); err == nil {
		t.Fatal("value-less line should error")
	}
	if _, err := ReadText(strings.NewReader("a 1 2\nb 1\n")); err == nil {
		t.Fatal("dim mismatch should error")
	}
	if _, err := ReadText(strings.NewReader("a xx\n")); err == nil {
		t.Fatal("non-numeric value should error")
	}
}

func TestReadTextSkipsBlankLines(t *testing.T) {
	got, err := ReadText(strings.NewReader("\na 1 2\n\nb 3 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("Len = %d", got.Len())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := NewStore(4)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		s.Add(word(i), []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()})
	}
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() || got.Dim() != s.Dim() {
		t.Fatal("binary round-trip shape wrong")
	}
	for i := 0; i < s.Len(); i++ {
		if got.Word(i) != s.Word(i) {
			t.Fatalf("word %d mismatch", i)
		}
		a, b := got.Vector(i), s.Vector(i)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("vector %d component %d mismatch", i, j)
			}
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not an embedding file at all")); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := ReadBinary(strings.NewReader("RETRO")); err == nil {
		t.Fatal("expected short-read error")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	s := NewStore(2)
	s.Add("a", []float64{1, 2})
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestCombineConcat(t *testing.T) {
	a := NewStore(2)
	a.Add("x", []float64{1, 2})
	a.Add("only_a", []float64{3, 4})
	b := NewStore(3)
	b.Add("x", []float64{5, 6, 7})
	b.Add("only_b", []float64{8, 9, 10})

	out, err := Combine(a, b, Concat)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim() != 5 || out.Len() != 2 {
		t.Fatalf("concat shape: dim=%d len=%d", out.Dim(), out.Len())
	}
	v, _ := out.VectorOf("x")
	want := []float64{1, 2, 5, 6, 7}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("concat vector = %v", v)
		}
	}
	// Missing in b -> zero tail (OOV null-vector convention).
	v2, _ := out.VectorOf("only_a")
	if v2[2] != 0 || v2[3] != 0 || v2[4] != 0 {
		t.Fatalf("missing-word tail should be zero: %v", v2)
	}
	if _, ok := out.VectorOf("only_b"); ok {
		t.Fatal("words only in b must be dropped")
	}
}

func TestCombineAverage(t *testing.T) {
	a := NewStore(2)
	a.Add("x", []float64{2, 4})
	b := NewStore(2)
	b.Add("x", []float64{4, 8})
	out, err := Combine(a, b, Average)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := out.VectorOf("x")
	if v[0] != 3 || v[1] != 6 {
		t.Fatalf("average = %v", v)
	}

	c := NewStore(3)
	if _, err := Combine(a, c, Average); err == nil {
		t.Fatal("dim mismatch should error for Average")
	}
}

func TestCombineModeString(t *testing.T) {
	if Concat.String() != "concat" || Average.String() != "average" {
		t.Fatal("String() wrong")
	}
	if CombineMode(99).String() == "" {
		t.Fatal("unknown mode should render")
	}
}
