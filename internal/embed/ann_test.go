package embed

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/ann"
)

func randomStore(n, dim int, seed int64) *Store {
	rng := rand.New(rand.NewSource(seed))
	s := NewStore(dim)
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		s.Add(fmt.Sprintf("w%04d", i), v)
	}
	return s
}

func TestTopKStaysExactBelowThreshold(t *testing.T) {
	s := randomStore(200, 8, 1)
	q := s.Vector(17)
	s.TopK(q, 5, nil)
	if s.ANNIndex() != nil {
		t.Fatal("ANN index built below threshold")
	}
}

func TestTopKRoutesToANNAboveThreshold(t *testing.T) {
	s := randomStore(300, 8, 2)
	// A wide beam on a small set makes the approximate answer exact, so
	// routing can be asserted against TopKExact result-for-result.
	s.EnableANN(100, ann.Params{EfSearch: 300})
	q := s.Vector(42)
	got := s.TopK(q, 5, func(id int) bool { return id == 42 })
	if s.ANNIndex() == nil {
		t.Fatal("ANN index not built above threshold")
	}
	want := s.TopKExact(q, 5, func(id int) bool { return id == 42 })
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Word != want[i].Word {
			t.Fatalf("rank %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDisableANNForcesExact(t *testing.T) {
	s := randomStore(300, 8, 3)
	s.EnableANN(100, ann.Params{})
	s.TopK(s.Vector(0), 3, nil)
	if s.ANNIndex() == nil {
		t.Fatal("index should be built")
	}
	s.DisableANN()
	if s.ANNIndex() != nil {
		t.Fatal("DisableANN left an index")
	}
	s.TopK(s.Vector(0), 3, nil)
	if s.ANNIndex() != nil {
		t.Fatal("index rebuilt while disabled")
	}
}

// TestAddAfterBuildIsSearchable is the incremental-maintenance property:
// a vector added after the index was built must be findable without any
// explicit rebuild.
func TestAddAfterBuildIsSearchable(t *testing.T) {
	s := randomStore(300, 8, 4)
	s.EnableANN(100, ann.Params{EfSearch: 300})
	probe := s.Vector(99)
	s.TopK(probe, 3, nil) // trigger the build
	if s.ANNIndex() == nil {
		t.Fatal("index not built")
	}
	// Add a new word right on top of the probe vector.
	v := make([]float64, 8)
	copy(v, probe)
	s.Add("fresh", v)
	top := s.TopK(probe, 2, nil)
	found := false
	for _, m := range top {
		if m.Word == "fresh" {
			found = true
		}
	}
	if !found {
		t.Fatalf("freshly added vector not returned: %+v", top)
	}
}

func TestSetVectorAfterBuildMovesEntry(t *testing.T) {
	s := randomStore(300, 8, 5)
	s.EnableANN(100, ann.Params{EfSearch: 300})
	s.TopK(s.Vector(0), 1, nil) // build
	target := make([]float64, 8)
	copy(target, s.Vector(7))
	id, _ := s.ID("w0200")
	s.SetVector(id, target)
	top := s.TopK(target, 2, nil)
	found := false
	for _, m := range top {
		if m.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("moved vector not found at new position: %+v", top)
	}
}

func TestInvalidateANNRebuilds(t *testing.T) {
	s := randomStore(300, 8, 6)
	s.EnableANN(100, ann.Params{EfSearch: 300})
	s.TopK(s.Vector(0), 1, nil)
	first := s.ANNIndex()
	if first == nil {
		t.Fatal("index not built")
	}
	s.InvalidateANN()
	if s.ANNIndex() != nil {
		t.Fatal("stale index still exposed")
	}
	s.TopK(s.Vector(0), 1, nil)
	second := s.ANNIndex()
	if second == nil || second == first {
		t.Fatal("index not rebuilt after invalidation")
	}
}

func TestWarmANNBuildsEagerly(t *testing.T) {
	s := randomStore(300, 8, 9)
	s.EnableANN(100, ann.Params{})
	s.WarmANN()
	if s.ANNIndex() == nil {
		t.Fatal("WarmANN did not build the index")
	}
	below := randomStore(50, 8, 10)
	below.EnableANN(100, ann.Params{})
	below.WarmANN()
	if below.ANNIndex() != nil {
		t.Fatal("WarmANN built below the threshold")
	}
}

// TestTuneEfSearch: retuning the query beam must not discard a built
// index (unlike EnableANN) and must show up on both the store config and
// the live index.
func TestTuneEfSearch(t *testing.T) {
	s := randomStore(300, 8, 5)
	s.EnableANN(1, ann.Params{})
	s.WarmANN()
	idx := s.ANNIndex()
	if idx == nil {
		t.Fatal("index not built")
	}
	s.TuneEfSearch(512)
	if s.ANNIndex() != idx {
		t.Fatal("TuneEfSearch discarded the index")
	}
	if got := idx.Params().EfSearch; got != 512 {
		t.Fatalf("index EfSearch %d, want 512", got)
	}
	if got := s.ANNParams().EfSearch; got != 512 {
		t.Fatalf("store EfSearch %d, want 512", got)
	}
	s.TuneEfSearch(0) // ignored
	if got := s.ANNParams().EfSearch; got != 512 {
		t.Fatalf("non-positive tune applied: %d", got)
	}
	if res := s.TopK(s.Vector(3), 5, nil); len(res) != 5 {
		t.Fatalf("TopK after retune: %d results", len(res))
	}
}

func TestCloneCarriesANNConfig(t *testing.T) {
	s := randomStore(300, 8, 7)
	s.EnableANN(100, ann.Params{EfSearch: 300})
	c := s.Clone()
	c.TopK(c.Vector(0), 1, nil)
	if c.ANNIndex() == nil {
		t.Fatal("clone did not inherit ANN threshold")
	}
}
