package embed

import (
	"sync"
	"time"

	"github.com/retrodb/retro/internal/ann"
)

// This file is the store-level face of the batched query path: TopKMany
// answers Q queries together, each identically to a TopK call, routing
// through ann.TopKMany when the index applies and falling back to the
// exact scan per query below the ANN threshold — the same switch, with
// the same clamps, as the single-query path.

// manyResultPool recycles the intermediate [][]ann.Result storage the
// batched ANN path needs before id->word resolution. The inner slices
// ride along inside the pooled value, so a warm steady-state batch
// resolves every query without allocating.
var manyResultPool = sync.Pool{New: func() any { return new([][]ann.Result) }}

// TopKMany returns, per query, the k entries most cosine-similar to it,
// excluding ids for which skip returns true (skip may be nil; qi is the
// query's index in the batch). Each query's result is exactly what
// TopK(queries[qi], k, ...) returns — same matches, same order — but a
// batch traverses the index together and is substantially cheaper per
// query than a loop of TopK calls. Fresh result storage is allocated;
// the serving path uses TopKManyAppend.
func (s *Store) TopKMany(queries [][]float64, k int, skip func(qi, id int) bool) [][]Match {
	ks := make([]int, len(queries))
	for i := range ks {
		ks[i] = k
	}
	return s.TopKManyAppend(queries, ks, skip, nil)
}

// TopKManyAppend is TopKMany with per-query k values and caller-owned
// result storage: query i's matches are written into dst[i][:0] (dst is
// grown to len(queries) if short) and the slice of slices is returned.
// With warm capacity and warm pools a steady-state batch on the ANN
// path performs no allocation.
func (s *Store) TopKManyAppend(queries [][]float64, ks []int, skip func(qi, id int) bool, dst [][]Match) [][]Match {
	return s.TopKManyAppendStats(queries, ks, skip, dst, nil)
}

// TopKManyAppendStats is TopKManyAppend with batch telemetry: when st
// is non-nil it receives the batch's aggregate traversal stats (see
// ann.SearchStats; on the exact fallback each query's scan counts as
// walk time and every row as a scored node, as in the single path).
func (s *Store) TopKManyAppendStats(queries [][]float64, ks []int, skip func(qi, id int) bool, dst [][]Match, st *ann.SearchStats) [][]Match {
	if len(queries) != len(ks) {
		panic("embed: TopKMany ks length mismatch")
	}
	for _, q := range queries {
		if len(q) != s.dim {
			panic("embed: TopKMany query dimension mismatch")
		}
	}
	if st != nil {
		*st = ann.SearchStats{}
	}
	if cap(dst) < len(queries) {
		grown := make([][]Match, len(queries))
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:len(queries)]
	for i := range dst {
		dst[i] = dst[i][:0]
	}
	if len(queries) == 0 {
		return dst
	}

	if idx := s.queryANN(); idx != nil {
		// k clamping is the index's own (to the live entry count, after
		// the k <= 0 empty-result rule) — the same net clamp the single
		// path applies before and inside its idx call.
		buf := manyResultPool.Get().(*[][]ann.Result)
		results := idx.TopKManyAppendStats(queries, ks, skip, *buf, st)
		for qi, rs := range results {
			out := dst[qi]
			for _, r := range rs {
				out = append(out, Match{ID: r.ID, Word: s.words[r.ID], Score: r.Score})
			}
			dst[qi] = out
		}
		*buf = results
		manyResultPool.Put(buf)
		return dst
	}

	// Exact fallback: one bounded-heap scan per query, exactly the
	// single-query path in a loop. One adapter closure serves the whole
	// batch — qi is rebound per iteration, and the scans are sequential.
	var start time.Time
	if st != nil {
		start = time.Now()
	}
	qi := 0
	var single func(id int) bool
	if skip != nil {
		single = func(id int) bool { return skip(qi, id) }
	}
	for i := range queries {
		qi = i
		dst[i] = s.TopKExactAppend(queries[i], ks[i], single, dst[i])
		if st != nil && ks[i] > 0 {
			st.Nodes += len(s.words)
		}
	}
	if st != nil {
		st.WalkNs = time.Since(start).Nanoseconds()
	}
	return dst
}
