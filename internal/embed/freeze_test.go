package embed

import (
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/ann"
)

// captureMatches deep-copies a result list so later mutations of the
// store (or of recycled buffers) cannot retroactively change it.
func captureMatches(ms []Match) []Match {
	out := make([]Match, len(ms))
	copy(out, ms)
	return out
}

func equalMatches(a, b []Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFreezeIsolation: a frozen snapshot is bit-stable under every live
// mutation class — overwrites, staged and plain appends, direct matrix
// writes behind PrepareWrite, and bulk normalisation.
func TestFreezeIsolation(t *testing.T) {
	for _, annOn := range []bool{false, true} {
		name := "exact"
		if annOn {
			name = "ann"
		}
		t.Run(name, func(t *testing.T) {
			s := randomStore(300, 16, 42)
			if annOn {
				s.EnableANN(1, ann.Params{})
			} else {
				s.DisableANN()
			}
			rng := rand.New(rand.NewSource(9))
			q := make([]float64, 16)
			for i := range q {
				q[i] = rng.NormFloat64()
			}

			f := s.Freeze()
			if !f.Frozen() || s.Frozen() {
				t.Fatal("Frozen() flags wrong way around")
			}
			wantLen := f.Len()
			wantVec := append([]float64(nil), f.Vector(3)...)
			wantTop := captureMatches(f.TopK(q, 12, nil))

			// Overwrite an existing row (COW matrix + ANN clone path).
			nv := make([]float64, 16)
			for i := range nv {
				nv[i] = rng.NormFloat64()
			}
			s.Add(s.Word(3), nv)
			// Append new vocabulary (COW index path; matrix append).
			for i := 0; i < 50; i++ {
				v := make([]float64, 16)
				for j := range v {
					v[j] = rng.NormFloat64()
				}
				s.Add("extra-"+string(rune('a'+i%26))+string(rune('0'+i/26)), v)
			}
			// Direct matrix writes, the incremental-repair idiom.
			s.PrepareWrite()
			w := s.Matrix()
			for j := 0; j < 16; j++ {
				w.Row(7)[j] = rng.NormFloat64()
			}
			s.RefreshRow(7)
			// Bulk rewrite.
			s.NormalizeAll()

			if f.Len() != wantLen {
				t.Fatalf("frozen Len changed: %d -> %d", wantLen, f.Len())
			}
			for j, x := range f.Vector(3) {
				if x != wantVec[j] {
					t.Fatalf("frozen vector for id 3 changed at dim %d", j)
				}
			}
			if got := f.TopK(q, 12, nil); !equalMatches(got, wantTop) {
				t.Fatalf("frozen TopK changed:\n  was %v\n  now %v", wantTop, got)
			}
			if _, ok := f.ID("extra-a0"); ok {
				t.Fatal("frozen snapshot sees vocabulary added after the freeze")
			}
			if _, ok := s.ID("extra-a0"); !ok {
				t.Fatal("live store lost an appended word")
			}
		})
	}
}

// TestFreezeSeesPreFreezeState: the snapshot answers from exactly the
// state at freeze time, including values added just before.
func TestFreezeSeesPreFreezeState(t *testing.T) {
	s := randomStore(64, 8, 7)
	v := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	id := s.Add("fresh", v)
	f := s.Freeze()
	got, ok := f.VectorOf("fresh")
	if !ok {
		t.Fatal("frozen snapshot missing a pre-freeze value")
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("dim %d: %v != %v", i, got[i], v[i])
		}
	}
	if fid, _ := f.ID("fresh"); fid != id {
		t.Fatalf("frozen id %d != live id %d", fid, id)
	}
}

// TestFrozenMutatorsPanic: every mutator refuses to run on a snapshot.
func TestFrozenMutatorsPanic(t *testing.T) {
	s := randomStore(32, 8, 3)
	f := s.Freeze()
	v := make([]float64, 8)
	cases := map[string]func(){
		"Add":           func() { f.Add("x", v) },
		"AddStaged":     func() { f.AddStaged("x", v) },
		"SetVector":     func() { f.SetVector(0, v) },
		"RefreshRow":    func() { f.RefreshRow(0) },
		"NormalizeAll":  func() { f.NormalizeAll() },
		"EnableANN":     func() { f.EnableANN(1, ann.Params{}) },
		"DisableANN":    func() { f.DisableANN() },
		"InvalidateANN": func() { f.InvalidateANN() },
		"TuneEfSearch":  func() { f.TuneEfSearch(32) },
		"AdoptANN":      func() { _ = f.AdoptANN(ann.New(8, ann.Params{})) },
		"PrepareWrite":  func() { f.PrepareWrite() },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on a frozen snapshot did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestFreezeRepeatedCycles exercises the freeze/write/freeze cadence of
// the serving layer: each published generation stays stable while later
// generations move on.
func TestFreezeRepeatedCycles(t *testing.T) {
	s := randomStore(200, 12, 5)
	s.EnableANN(1, ann.Params{})
	rng := rand.New(rand.NewSource(31))
	q := make([]float64, 12)
	for i := range q {
		q[i] = rng.NormFloat64()
	}

	type gen struct {
		f   *Store
		top []Match
		n   int
	}
	var gens []gen
	for cycle := 0; cycle < 5; cycle++ {
		f := s.Freeze()
		gens = append(gens, gen{f: f, top: captureMatches(f.TopK(q, 8, nil)), n: f.Len()})
		// Mutate between freezes: one overwrite + three appends.
		v := make([]float64, 12)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		s.Add(s.Word(rng.Intn(s.Len())), v)
		for a := 0; a < 3; a++ {
			nv := make([]float64, 12)
			for j := range nv {
				nv[j] = rng.NormFloat64()
			}
			s.Add("gen-"+string(rune('a'+cycle))+"-"+string(rune('0'+a)), nv)
		}
	}
	for i, g := range gens {
		if g.f.Len() != g.n {
			t.Fatalf("generation %d grew from %d to %d", i, g.n, g.f.Len())
		}
		if got := g.f.TopK(q, 8, nil); !equalMatches(got, g.top) {
			t.Fatalf("generation %d results drifted", i)
		}
	}
}

// TestTopKAppendBufferIndependence is the pooled-buffer property test:
// repeated queries with interleaved k values, on both search paths, must
// return correct results that the recycled internal scratch can never
// alias — scribbling over one call's returned slice must not perturb any
// other call's results.
func TestTopKAppendBufferIndependence(t *testing.T) {
	for _, annOn := range []bool{false, true} {
		name := "exact"
		if annOn {
			name = "ann"
		}
		t.Run(name, func(t *testing.T) {
			s := randomStore(400, 16, 13)
			if annOn {
				s.EnableANN(1, ann.Params{})
				s.WarmANN()
			} else {
				s.DisableANN()
			}
			rng := rand.New(rand.NewSource(17))
			queries := make([][]float64, 8)
			for i := range queries {
				queries[i] = make([]float64, 16)
				for j := range queries[i] {
					queries[i][j] = rng.NormFloat64()
				}
			}
			ks := []int{1, 17, 4, 33, 2, 9, 50, 5}

			// Expected answers, computed one query at a time with fresh
			// storage before any buffer recycling happens.
			want := make([][]Match, len(queries))
			for i, q := range queries {
				want[i] = captureMatches(s.TopK(q, ks[i], nil))
			}

			// Interleave the same queries through TopK (fresh storage per
			// call) and scribble over every returned slice immediately —
			// if a recycled buffer aliased a returned result, a later
			// query or the scribble would corrupt something.
			got := make([][]Match, len(queries))
			for round := 0; round < 4; round++ {
				for i, q := range queries {
					res := s.TopK(q, ks[i], nil)
					got[i] = res
					prev := (i + len(queries) - 1) % len(queries)
					if round > 0 || i > 0 {
						for j := range got[prev] {
							if got[prev][j] != want[prev][j] {
								t.Fatalf("round %d: result %d mutated by a later query", round, prev)
							}
						}
					}
					// Scribble: recycled scratch must not carry this back.
					for j := range res {
						res[j] = Match{ID: -1, Word: "poison", Score: -99}
					}
					got[i] = captureMatches(s.TopK(q, ks[i], nil))
				}
			}
			for i := range got {
				if !equalMatches(got[i], want[i]) {
					t.Fatalf("query %d: interleaved results diverged from reference", i)
				}
			}
		})
	}
}

// TestTopKExactAppendZeroAlloc guards the exact scan's inner loop: with
// a warm norm cache and caller-owned storage it performs no allocation.
func TestTopKExactAppendZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are asserted without the race detector")
	}
	s := randomStore(2000, 32, 19)
	s.DisableANN()
	q := make([]float64, 32)
	rng := rand.New(rand.NewSource(23))
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	buf := make([]Match, 0, 10)
	buf = s.TopKExactAppend(q, 10, nil, buf) // warm the norm cache
	allocs := testing.AllocsPerRun(100, func() {
		buf = s.TopKExactAppend(q, 10, nil, buf)
	})
	if allocs != 0 {
		t.Fatalf("TopKExactAppend allocated %.2f times per scan, want 0", allocs)
	}

	// The frozen (serving) variant must be allocation-free too.
	f := s.Freeze()
	allocs = testing.AllocsPerRun(100, func() {
		buf = f.TopKExactAppend(q, 10, nil, buf)
	})
	if allocs != 0 {
		t.Fatalf("frozen TopKExactAppend allocated %.2f times per scan, want 0", allocs)
	}
}

// TestTopKAppendANNZeroAlloc covers the approximate path end to end
// (store dispatch + index search + id->word resolution).
func TestTopKAppendANNZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are asserted without the race detector")
	}
	s := randomStore(3000, 32, 29)
	s.EnableANN(1, ann.Params{})
	s.WarmANN()
	f := s.Freeze()
	q := make([]float64, 32)
	rng := rand.New(rand.NewSource(37))
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	buf := make([]Match, 0, 10)
	buf = f.TopKAppend(q, 10, nil, buf) // warm the scratch pools
	allocs := testing.AllocsPerRun(100, func() {
		buf = f.TopKAppend(q, 10, nil, buf)
	})
	if allocs != 0 {
		t.Fatalf("ANN TopKAppend allocated %.2f times per query, want 0", allocs)
	}
}
