// Package embed implements the word embedding store RETRO retrofits
// against: a vocabulary mapped to dense vectors, with serialisation,
// nearest-neighbour queries and the concatenation combiner of §4.6.
package embed

import (
	"cmp"
	"fmt"
	"maps"
	"slices"
	"sync"
	"time"

	"github.com/retrodb/retro/internal/ann"
	"github.com/retrodb/retro/internal/vec"
)

// DefaultANNThreshold is the vocabulary size at which TopK switches from
// the exact scan to the HNSW index. Below it brute force is already fast
// and exact; above it the graph wins by orders of magnitude.
const DefaultANNThreshold = 4096

// Quantization modes for ANN candidate generation (see EnableQuantization).
const (
	// QuantOff traverses the HNSW graph on exact float64 distances.
	QuantOff = "off"
	// QuantSQ8 traverses on 8-bit scalar-quantized codes (8x less memory
	// traffic per hop) and re-scores the over-fetched candidates exactly
	// in float64 before returning.
	QuantSQ8 = "sq8"
)

// ParseQuantMode normalises a user-facing quantization mode string
// ("", "off", "none" select QuantOff; "sq8" selects QuantSQ8).
func ParseQuantMode(s string) (string, error) {
	switch s {
	case "", "off", "none":
		return QuantOff, nil
	case QuantSQ8:
		return QuantSQ8, nil
	}
	return "", fmt.Errorf("embed: unknown quantization mode %q (use off or sq8)", s)
}

// Precision selects the in-memory representation of the store's vectors.
// The zero value is F64, the historical representation, so existing
// callers are unaffected.
//
// An F32 store holds its matrix, row-norm cache and ANN graph rows as
// float32 — half the resident bytes and half the memory traffic per
// distance evaluation — while every score is still accumulated in
// float64 (see vec.Dot32), keeping serving results within ~1e-6 of the
// float64 pipeline on the same float32-rounded data. The float64 API is
// unchanged: vectors go in as []float64 and are rounded once at the
// store boundary; Vector/VectorOf return widened copies.
type Precision uint8

const (
	// F64 stores vectors as float64 (the default).
	F64 Precision = iota
	// F32 stores vectors as float32 with float64 score accumulation.
	F32
)

func (p Precision) String() string {
	switch p {
	case F64:
		return "f64"
	case F32:
		return "f32"
	default:
		return fmt.Sprintf("Precision(%d)", uint8(p))
	}
}

// Bytes returns the bytes per stored value.
func (p Precision) Bytes() int {
	if p == F32 {
		return 4
	}
	return 8
}

// ParsePrecision normalises a user-facing precision string. The empty
// string selects F64 so zero-valued configs keep their meaning.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64", "float64", "double":
		return F64, nil
	case "f32", "float32", "single":
		return F32, nil
	}
	return F64, fmt.Errorf("embed: unknown precision %q (use f32 or f64)", s)
}

// Store holds an embedding matrix with a string vocabulary. Rows of the
// matrix correspond 1:1 to vocabulary entries.
//
// Reads (TopK, Analogy, Vector lookups) are safe to run concurrently with
// each other — including the lazy ANN index build, which is serialised
// internally. Mutations (Add, SetVector, NormalizeAll, ...) require
// external synchronisation against reads and other writes.
//
// For fully lock-free concurrent reads, Freeze returns an immutable
// snapshot that shares storage with the live store under a copy-on-write
// discipline: the first mutation after a Freeze copies whatever piece of
// state the snapshot still shares (matrix, vocabulary index, norm cache,
// ANN graph) before touching it, so a frozen snapshot is never perturbed.
// This is how the serving layer publishes read views that queries run
// against without any lock while inserts mutate the live store.
type Store struct {
	dim   int
	words []string
	index map[string]int

	// Exactly one of matrix/matrix32 is populated, per precision. Every
	// mutator and scan branches through the precision-aware helpers
	// (setRow, computeNorm, rowWide, ...) so the copy-on-write and epoch
	// machinery is shared between the representations.
	precision Precision
	matrix    *vec.Matrix   // F64 rows
	matrix32  *vec.Matrix32 // F32 rows

	// frozen marks an immutable Freeze snapshot: mutators panic, and the
	// query paths read derived state (norms, ANN index) without locking
	// because Freeze materialised it up front.
	frozen bool

	// shared* record which pieces of state the most recent Freeze
	// snapshot still shares with this live store. The corresponding cow*
	// helper copies the piece and clears the flag on the first mutation
	// after a freeze; appends past the frozen length don't count (a
	// snapshot never reads beyond the row/word count it was frozen at).
	sharedMatrix bool
	sharedIndex  bool
	sharedNorms  bool
	sharedANN    bool

	// Approximate-search state. The HNSW index is built lazily on the
	// first TopK at or above annThreshold and maintained incrementally by
	// Add/SetVector; wholesale mutations mark it stale instead.
	annMu        sync.Mutex
	annIndex     *ann.Index
	annStale     bool
	annParams    ann.Params
	annThreshold int

	// Configured quantization for the ANN index (QuantOff or QuantSQ8,
	// with the candidate over-fetch factor). The built index is brought
	// in line lazily by ensureANN — under the same copy-on-write
	// discipline as every other index mutation, so frozen snapshots keep
	// serving their own (un)quantized graph untouched.
	quantMode   string
	quantRerank int

	// Cached L2 row norms for the exact scan: built lazily on the first
	// TopKExact and maintained by Add/SetVector/NormalizeAll/RefreshRow,
	// so the hot path stops recomputing every norm per query. An F32
	// store keeps the cache as float32 (norms32); an F64 store as
	// float64 (norms) — only one is ever populated.
	normMu  sync.Mutex
	norms   []float64
	norms32 []float32

	// wbuf is a widening scratch row for the ANN maintenance paths of an
	// F32 store (ann.Index.Insert takes []float64). It is only touched
	// under annMu.
	wbuf []float64

	// Epoch stamping for the storage engine's delta checkpoints: every
	// mutator stamps the touched row with the store's current epoch, so
	// "rows changed since epoch E" (ChangedSince) is an O(n) scan over
	// one uint64 per row instead of a diff of two matrices. The stamps
	// are maintained by writers and read under the same external
	// synchronisation as every other mutation; Freeze snapshots do not
	// carry them (a frozen view is never checkpointed directly).
	epoch     uint64
	rowEpochs []uint64
}

// NewStore creates an empty float64 store for vectors of the given
// dimensionality. ANN search is enabled by default at
// DefaultANNThreshold.
func NewStore(dim int) *Store {
	return NewStoreWithPrecision(dim, F64)
}

// NewStoreWithPrecision creates an empty store with the given vector
// representation (see Precision). The precision is fixed for the
// store's lifetime.
func NewStoreWithPrecision(dim int, p Precision) *Store {
	if dim <= 0 {
		panic(fmt.Sprintf("embed: non-positive dimension %d", dim))
	}
	if p != F64 && p != F32 {
		panic(fmt.Sprintf("embed: invalid precision %d", p))
	}
	return &Store{
		dim:          dim,
		precision:    p,
		index:        make(map[string]int),
		annParams:    ann.DefaultParams(),
		annThreshold: DefaultANNThreshold,
	}
}

// Dim returns the vector dimensionality.
func (s *Store) Dim() int { return s.dim }

// Precision returns the store's vector representation.
func (s *Store) Precision() Precision { return s.precision }

// Len returns the vocabulary size.
func (s *Store) Len() int { return len(s.words) }

// Frozen reports whether this store is an immutable Freeze snapshot.
func (s *Store) Frozen() bool { return s.frozen }

// mutable panics when a mutator is invoked on a frozen snapshot; the
// serving layer depends on snapshots never changing underneath readers.
func (s *Store) mutable(op string) {
	if s.frozen {
		panic("embed: " + op + " on a frozen store snapshot")
	}
}

// Freeze returns an immutable snapshot of the store. The snapshot answers
// every read (Vector, ID, TopK, TopKExact, Analogy) without taking any
// lock: derived state — the row-norm cache and, where the vocabulary
// size warrants it, the HNSW index — is materialised here, up front, so
// no read ever builds anything lazily.
//
// The snapshot shares storage with the live store; the live store's
// first mutation after a Freeze copies whatever the snapshot still
// shares (copy-on-write), so snapshots are stable no matter how the live
// store evolves. Appends stay O(delta): new rows and words land beyond
// the frozen length, which no snapshot reader ever indexes. Overwrites
// of existing rows pay one flat memcpy of the matrix (and, for the
// vocabulary index, one map clone) per freeze/write cycle — a batch of
// inserts amortises it across the batch.
//
// Freeze requires the same external synchronisation as Add. Mutating the
// returned snapshot panics. Freezing a frozen store returns it unchanged.
func (s *Store) Freeze() *Store {
	if s.frozen {
		return s
	}
	s.ensureNormCache() // materialise the norm cache for lock-free exact scans
	s.ensureANN()       // build the index now; a snapshot never builds lazily
	f := &Store{
		dim:          s.dim,
		precision:    s.precision,
		words:        s.words,
		index:        s.index,
		frozen:       true,
		annParams:    s.annParams,
		annThreshold: s.annThreshold,
		quantMode:    s.quantMode,
		quantRerank:  s.quantRerank,
	}
	if s.matrix != nil {
		m := *s.matrix // private header; the backing array is shared
		f.matrix = &m
	}
	if s.matrix32 != nil {
		m := *s.matrix32
		f.matrix32 = &m
	}
	s.sharedMatrix, s.sharedIndex = true, true
	s.normMu.Lock()
	f.norms = s.norms
	f.norms32 = s.norms32
	s.sharedNorms = true
	s.normMu.Unlock()
	s.annMu.Lock()
	if s.annIndex != nil && !s.annStale {
		f.annIndex = s.annIndex
		s.sharedANN = true
	}
	s.annMu.Unlock()
	return f
}

// cowMatrix gives the live store a private copy of the matrix backing
// array before an existing row is overwritten in place.
func (s *Store) cowMatrix() {
	if !s.sharedMatrix {
		return
	}
	if s.matrix != nil {
		data := make([]float64, len(s.matrix.Data))
		copy(data, s.matrix.Data)
		s.matrix = &vec.Matrix{Rows: s.matrix.Rows, Cols: s.matrix.Cols, Stride: s.matrix.Stride, Data: data}
	}
	if s.matrix32 != nil {
		data := make([]float32, len(s.matrix32.Data))
		copy(data, s.matrix32.Data)
		s.matrix32 = &vec.Matrix32{Rows: s.matrix32.Rows, Cols: s.matrix32.Cols, Stride: s.matrix32.Stride, Data: data}
	}
	s.sharedMatrix = false
}

// cowIndex gives the live store a private vocabulary index before a new
// word is registered (Go maps tolerate no concurrent read/write at all).
func (s *Store) cowIndex() {
	if !s.sharedIndex {
		return
	}
	s.index = maps.Clone(s.index)
	s.sharedIndex = false
}

// stamp records that row id changed in the store's current epoch.
// AddStaged appends rows without a RefreshRow in between, so the stamp
// backfills any gap at the current epoch (those rows were appended in
// this epoch too).
func (s *Store) stamp(id int) {
	for len(s.rowEpochs) <= id {
		s.rowEpochs = append(s.rowEpochs, s.epoch)
	}
	s.rowEpochs[id] = s.epoch
}

// Epoch returns the store's current change epoch.
func (s *Store) Epoch() uint64 { return s.epoch }

// AdvanceEpoch increments the change epoch and returns the new value.
// The storage engine calls it at each checkpoint: rows stamped before
// the advance belong to the segment just written, rows stamped after it
// to the next one. Requires the same external synchronisation as Add.
func (s *Store) AdvanceEpoch() uint64 {
	s.mutable("AdvanceEpoch")
	s.epoch++
	return s.epoch
}

// SetEpoch sets the change epoch without touching any row stamp. Used
// after recovery: rows restored from the base and segments keep their
// zero stamps (already durable), and the epoch jumps to the manifest's
// so rows touched by WAL tail replay land in the next delta.
func (s *Store) SetEpoch(e uint64) {
	s.mutable("SetEpoch")
	s.epoch = e
}

// StampAll marks every row changed in the current epoch. A full
// re-solve that rebuilt the store loses the per-row history, so the
// session conservatively stamps everything — the next checkpoint then
// captures the whole vocabulary (and typically compacts) instead of
// silently dropping rebuilt rows from the delta.
func (s *Store) StampAll() {
	s.mutable("StampAll")
	for id := range s.words {
		s.stamp(id)
	}
}

// ChangedSince returns the ids of rows stamped at or after epoch e, in
// ascending order. Rows with no stamp (a store deserialised directly
// from a snapshot) count as stamped at 0: they came from durable state,
// so they are unchanged relative to any later epoch. Requires the same
// external synchronisation as Add and is meaningless on a Freeze
// snapshot (stamps stay with the live store).
func (s *Store) ChangedSince(e uint64) []int {
	var out []int
	for id := range s.words {
		var stamp uint64
		if id < len(s.rowEpochs) {
			stamp = s.rowEpochs[id]
		}
		if stamp >= e {
			out = append(out, id)
		}
	}
	return out
}

// PrepareWrite must be called before mutating rows obtained through
// Matrix() on a store that may have outstanding Freeze snapshots: it
// detaches the matrix from any snapshot (copy-on-write) so the in-place
// row writes of the incremental repair path cannot tear a published
// read view. On a store that was never frozen it is free.
func (s *Store) PrepareWrite() {
	s.mutable("PrepareWrite")
	s.cowMatrix()
}

// Add inserts a word with its vector and returns the assigned id. Adding
// an existing word overwrites its vector and returns the existing id.
// A built ANN index is updated in place.
func (s *Store) Add(word string, vector []float64) int {
	s.mutable("Add")
	if len(vector) != s.dim {
		panic(fmt.Sprintf("embed: vector for %q has dim %d, store has %d", word, len(vector), s.dim))
	}
	if id, ok := s.index[word]; ok {
		s.cowMatrix() // overwriting a row a snapshot may be reading
		s.setRow(id, vector)
		s.normUpdate(id)
		s.annUpdate(id)
		s.stamp(id)
		return id
	}
	id := len(s.words)
	s.words = append(s.words, word)
	s.cowIndex()
	s.index[word] = id
	s.growTo(id + 1)
	s.setRow(id, vector)
	s.normUpdate(id)
	s.annUpdate(id)
	s.stamp(id)
	return id
}

// AddStaged inserts a word and vector like Add but defers the derived
// per-row state — the ANN graph node and the cached norm — to a later
// RefreshRow(id). The write path stages new values with their
// provisional W0 vectors, repairs them, and only then registers the
// final vector, instead of paying a beam-search insert for a vector the
// repair is about to tombstone and replace. Until RefreshRow runs, the
// row is invisible to a built ANN index and the norm cache is dropped
// lazily, so the staging window must not overlap reads (the same
// external synchronisation Add already requires).
func (s *Store) AddStaged(word string, vector []float64) int {
	s.mutable("AddStaged")
	if len(vector) != s.dim {
		panic(fmt.Sprintf("embed: vector for %q has dim %d, store has %d", word, len(vector), s.dim))
	}
	if id, ok := s.index[word]; ok {
		s.cowMatrix() // overwriting a row a snapshot may be reading
		s.setRow(id, vector)
		s.stamp(id)
		return id
	}
	id := len(s.words)
	s.words = append(s.words, word)
	s.cowIndex()
	s.index[word] = id
	s.growTo(id + 1)
	s.setRow(id, vector)
	s.stamp(id)
	return id
}

// computeNorm returns the L2 norm of row id under the store's precision
// (float64 accumulation on either representation).
func (s *Store) computeNorm(id int) float64 {
	if s.precision == F32 {
		return vec.Norm32(s.row32(id))
	}
	return vec.Norm(s.row(id))
}

// normUpdate maintains the cached norm of one row; a cache that was never
// built stays unbuilt (it fills lazily on the first exact scan).
func (s *Store) normUpdate(id int) {
	s.normMu.Lock()
	defer s.normMu.Unlock()
	if s.precision == F32 {
		if s.norms32 == nil {
			return
		}
		if s.sharedNorms {
			s.norms32 = slices.Clone(s.norms32)
			s.sharedNorms = false
		}
		for len(s.norms32) < id {
			s.norms32 = append(s.norms32, float32(s.computeNorm(len(s.norms32))))
		}
		if id == len(s.norms32) {
			s.norms32 = append(s.norms32, float32(s.computeNorm(id)))
			return
		}
		s.norms32[id] = float32(s.computeNorm(id))
		return
	}
	if s.norms == nil {
		return
	}
	if s.sharedNorms {
		s.norms = slices.Clone(s.norms) // detach from any frozen snapshot
		s.sharedNorms = false
	}
	for len(s.norms) < id {
		// Rows between the cache's tail and id: AddStaged appends rows
		// without touching the cache, so a later RefreshRow on a higher
		// id must backfill the staged rows in between.
		s.norms = append(s.norms, vec.Norm(s.row(len(s.norms))))
	}
	if id == len(s.norms) {
		s.norms = append(s.norms, vec.Norm(s.row(id)))
		return
	}
	s.norms[id] = vec.Norm(s.row(id))
}

// rowNorms returns the float64 norm cache, building it on first use.
// Concurrent readers serialise only on the build. F64 stores only.
func (s *Store) rowNorms() []float64 {
	s.normMu.Lock()
	defer s.normMu.Unlock()
	if len(s.norms) != len(s.words) {
		norms := make([]float64, len(s.words))
		for id := range norms {
			norms[id] = vec.Norm(s.row(id))
		}
		s.norms = norms
		s.sharedNorms = false // freshly built, private to the live store
	}
	return s.norms
}

// rowNorms32 is rowNorms for an F32 store: the cache itself is float32
// (half the bytes the scan streams), computed through float64 norms.
func (s *Store) rowNorms32() []float32 {
	s.normMu.Lock()
	defer s.normMu.Unlock()
	if len(s.norms32) != len(s.words) {
		norms := make([]float32, len(s.words))
		for id := range norms {
			norms[id] = float32(s.computeNorm(id))
		}
		s.norms32 = norms
		s.sharedNorms = false
	}
	return s.norms32
}

// ensureNormCache materialises whichever norm cache the precision uses.
func (s *Store) ensureNormCache() {
	if s.precision == F32 {
		s.rowNorms32()
	} else {
		s.rowNorms()
	}
}

// annUpdate folds a single-row change into a built index: non-zero rows
// are (re)inserted, zero rows removed (the exact scan skips them too).
func (s *Store) annUpdate(id int) {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	if s.annIndex == nil || s.annStale {
		return
	}
	if s.sharedANN {
		// A frozen snapshot is serving queries from this graph: mutate a
		// structural clone instead (O(n) header copies, not a rebuild).
		s.annIndex = s.annIndex.Clone()
		s.sharedANN = false
	}
	r := s.widenRowLocked(id)
	if vec.Norm(r) == 0 {
		s.annIndex.Delete(id)
	} else if err := s.annIndex.Insert(id, r); err != nil {
		s.annStale = true // can't happen (dim checked, non-zero), but stay safe
	}
	// Every overwrite tombstones the old node. Once the dead outnumber the
	// living the graph wastes more traversal than a rebuild costs, and
	// recall degrades (the query beam only widens so far) — rebuild lazily.
	if s.annIndex.Deleted() > s.annIndex.Len() {
		s.annStale = true
	}
}

func (s *Store) growTo(n int) {
	need := n * s.dim
	if s.precision == F32 {
		if s.matrix32 == nil {
			s.matrix32 = &vec.Matrix32{Rows: 0, Cols: s.dim, Stride: s.dim}
		}
		if cap(s.matrix32.Data) < need {
			grown := make([]float32, need, maxInt(need, 2*cap(s.matrix32.Data)))
			copy(grown, s.matrix32.Data)
			s.matrix32.Data = grown
			s.sharedMatrix = false
		} else {
			s.matrix32.Data = s.matrix32.Data[:need]
		}
		s.matrix32.Rows = n
		return
	}
	if s.matrix == nil {
		s.matrix = &vec.Matrix{Rows: 0, Cols: s.dim, Stride: s.dim}
	}
	if cap(s.matrix.Data) < need {
		grown := make([]float64, need, maxInt(need, 2*cap(s.matrix.Data)))
		copy(grown, s.matrix.Data)
		s.matrix.Data = grown
		// The reallocation detached us from any frozen snapshot for free.
		s.sharedMatrix = false
	} else {
		// In-place growth writes only rows at or past the frozen length,
		// which no snapshot reader ever indexes — appends need no COW.
		s.matrix.Data = s.matrix.Data[:need]
	}
	s.matrix.Rows = n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (s *Store) row(id int) []float64   { return s.matrix.Row(id) }
func (s *Store) row32(id int) []float32 { return s.matrix32.Row(id) }

// setRow writes a float64 vector into row id under the store's
// precision. On an F32 store this is the single rounding point: each
// component is rounded to float32 once, here, and every downstream
// consumer (scans, ANN, quantization, persistence) reads the rounded
// value.
func (s *Store) setRow(id int, v []float64) {
	if s.precision == F32 {
		vec.Narrow(s.row32(id), v)
		return
	}
	copy(s.row(id), v)
}

// rowWide returns row id as []float64: the live row view on an F64
// store, or the row widened into buf (which must have length Dim) on an
// F32 store.
func (s *Store) rowWide(buf []float64, id int) []float64 {
	if s.precision == F32 {
		return vec.Widen(buf, s.row32(id))
	}
	return s.row(id)
}

// widenRowLocked widens row id into the store's scratch row (annMu must
// be held on concurrent paths). F64 stores return the live row.
func (s *Store) widenRowLocked(id int) []float64 {
	if s.precision != F32 {
		return s.row(id)
	}
	if len(s.wbuf) != s.dim {
		s.wbuf = make([]float64, s.dim)
	}
	return vec.Widen(s.wbuf, s.row32(id))
}

// ID returns the id of word.
func (s *Store) ID(word string) (int, bool) {
	id, ok := s.index[word]
	return id, ok
}

// Word returns the word with the given id.
func (s *Store) Word(id int) string { return s.words[id] }

// Words returns the vocabulary in id order. The slice must not be mutated.
func (s *Store) Words() []string { return s.words }

// Vector returns the vector for id as []float64: a read-only view on an
// F64 store, a freshly widened copy on an F32 store. Callers must not
// mutate it; use SetVector to change a stored vector.
func (s *Store) Vector(id int) []float64 {
	if s.precision == F32 {
		return vec.Widen(make([]float64, s.dim), s.row32(id))
	}
	return s.row(id)
}

// Vector32 returns a read-only float32 view of the vector for id. Only
// valid on an F32 store (the storage engine's delta checkpoints read
// rows through it to persist float32 words without a round trip).
func (s *Store) Vector32(id int) []float32 {
	if s.precision != F32 {
		panic("embed: Vector32 on a float64 store")
	}
	return s.row32(id)
}

// VectorOf returns the vector for a word, if present. Like Vector, an
// F32 store returns a widened copy.
func (s *Store) VectorOf(word string) ([]float64, bool) {
	id, ok := s.index[word]
	if !ok {
		return nil, false
	}
	return s.Vector(id), true
}

// SetVector overwrites the vector stored for id. A built ANN index is
// updated in place.
func (s *Store) SetVector(id int, vector []float64) {
	s.mutable("SetVector")
	if len(vector) != s.dim {
		panic("embed: SetVector dimension mismatch")
	}
	s.cowMatrix()
	s.setRow(id, vector)
	s.normUpdate(id)
	s.annUpdate(id)
	s.stamp(id)
}

// RefreshRow re-syncs the store's derived per-row state — the cached row
// norm and the ANN graph node — after the caller mutated row id in place
// through Matrix(). The incremental repair path writes re-solved vectors
// directly into the matrix and then refreshes each touched row, instead
// of copying every vector through SetVector.
func (s *Store) RefreshRow(id int) {
	s.mutable("RefreshRow")
	s.normUpdate(id)
	s.annUpdate(id)
	s.stamp(id)
}

// Matrix exposes the underlying (Len x Dim) float64 matrix. Rows are
// live views: mutating them mutates the store; callers that do so must
// call PrepareWrite first (so frozen snapshots are detached) and
// RefreshRow for each changed row (or InvalidateANN for bulk rewrites)
// so the ANN index and norm cache stay in step.
//
// Matrix panics on an F32 store: the float64 solver state cannot alias
// float32 rows. The session layer keeps its own float64 mirror and
// writes results back through SetVector (which rounds once).
func (s *Store) Matrix() *vec.Matrix {
	if s.precision == F32 {
		panic("embed: Matrix on a float32 store (solvers bind to a float64 mirror)")
	}
	if s.matrix == nil {
		return vec.NewMatrix(0, s.dim)
	}
	return s.matrix
}

// Matrix32 exposes the underlying float32 matrix of an F32 store, with
// the same live-view caveats as Matrix. It panics on an F64 store.
func (s *Store) Matrix32() *vec.Matrix32 {
	if s.precision != F32 {
		panic("embed: Matrix32 on a float64 store")
	}
	if s.matrix32 == nil {
		return vec.NewMatrix32(0, s.dim)
	}
	return s.matrix32
}

// Clone returns a deep copy of the store at the same precision. The ANN
// and quantization configuration is carried over; the index itself is
// rebuilt lazily on the copy.
func (s *Store) Clone() *Store {
	out := NewStoreWithPrecision(s.dim, s.precision)
	out.annParams = s.annParams
	out.annThreshold = s.annThreshold
	out.quantMode = s.quantMode
	out.quantRerank = s.quantRerank
	buf := make([]float64, s.dim)
	for id, w := range s.words {
		out.Add(w, s.rowWide(buf, id))
	}
	return out
}

// NormalizeAll scales every vector to unit L2 norm in place (zero vectors
// stay zero). The paper normalises embeddings before feeding them to the
// task networks (§5.5).
func (s *Store) NormalizeAll() {
	s.mutable("NormalizeAll")
	s.cowMatrix()
	for id := range s.words {
		if s.precision == F32 {
			vec.Normalize32(s.row32(id))
		} else {
			vec.Normalize(s.row(id))
		}
		s.normUpdate(id)
		s.stamp(id)
	}
	// A built ANN index stays valid: it already stores unit-normalised
	// copies, and cosine similarity is scale-invariant, so normalising
	// the rows changes neither the ordering nor (beyond last-ulp
	// rounding) the returned scores.
}

// EnableANN turns on approximate search above the given vocabulary-size
// threshold (0 selects DefaultANNThreshold) with the given graph
// parameters (zero fields select ann defaults). Any built index is
// discarded and rebuilt lazily with the new settings.
func (s *Store) EnableANN(threshold int, p ann.Params) {
	s.mutable("EnableANN")
	if threshold <= 0 {
		threshold = DefaultANNThreshold
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	s.annThreshold = threshold
	s.annParams = p
	s.annIndex = nil
	s.annStale = false
	s.sharedANN = false // any snapshot keeps the old index; ours is gone
}

// DisableANN makes every TopK use the exact scan.
func (s *Store) DisableANN() {
	s.mutable("DisableANN")
	s.annMu.Lock()
	defer s.annMu.Unlock()
	s.annThreshold = 0
	s.annIndex = nil
	s.annStale = false
	s.sharedANN = false
}

// InvalidateANN marks a built index stale so the next TopK rebuilds it,
// and drops the row-norm cache. Callers that bulk-rewrite vectors through
// Matrix() must invoke this (single-row mutations use RefreshRow).
func (s *Store) InvalidateANN() {
	s.mutable("InvalidateANN")
	s.annMu.Lock()
	if s.annIndex != nil {
		s.annStale = true
	}
	s.annMu.Unlock()
	s.normMu.Lock()
	s.norms = nil
	s.norms32 = nil
	s.sharedNorms = false // the snapshot keeps its cache; ours is dropped
	s.normMu.Unlock()
}

// ANNThreshold returns the vocabulary size at which TopK switches to the
// HNSW index (0 when ANN is disabled).
func (s *Store) ANNThreshold() int {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	return s.annThreshold
}

// ANNParams returns the graph parameters a (re)built index would use.
func (s *Store) ANNParams() ann.Params {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	return s.annParams
}

// EnableQuantization selects the ANN candidate-generation mode: QuantSQ8
// traverses the HNSW graph on 8-bit codes and re-ranks exactly, QuantOff
// (also "", "none") restores exact float64 traversal. rerank is the SQ8
// over-fetch factor (candidates fetched = rerank*k before exact
// re-scoring; non-positive selects the ann default). The built index is
// converted lazily on the next query/WarmANN/Freeze, retraining code
// ranges from the store's current vectors; a frozen snapshot keeps
// whatever the store had at Freeze time. Unknown modes panic — callers
// taking user input validate with ParseQuantMode first. Requires the
// same external synchronisation as Add.
func (s *Store) EnableQuantization(mode string, rerank int) {
	s.mutable("EnableQuantization")
	m, err := ParseQuantMode(mode)
	if err != nil {
		panic(err.Error())
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	s.quantMode = m
	if rerank > 0 {
		s.quantRerank = rerank
	} else {
		s.quantRerank = 0
	}
}

// Quantization returns the configured mode (QuantOff or QuantSQ8) and
// the effective rerank factor of the built index (the configured value,
// or the index's actual factor once one is quantized).
func (s *Store) Quantization() (mode string, rerank int) {
	if s.frozen {
		// Freeze materialised everything; read without locking.
		mode, rerank = s.quantMode, s.quantRerank
		if s.annIndex != nil && s.annIndex.Quantized() {
			rerank = s.annIndex.Rerank()
		}
		if mode == "" {
			mode = QuantOff
		}
		return mode, rerank
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	mode, rerank = s.quantMode, s.quantRerank
	if s.annIndex != nil && !s.annStale && s.annIndex.Quantized() {
		rerank = s.annIndex.Rerank()
	}
	if mode == "" {
		mode = QuantOff
	}
	return mode, rerank
}

// TuneRerank adjusts the SQ8 over-fetch factor on both the configured
// state and any built quantized index, without retraining the codebook —
// the re-rank depth, like the beam width, is a pure query-time knob.
// Non-positive values are ignored. Requires the same external
// synchronisation as Add.
func (s *Store) TuneRerank(r int) {
	s.mutable("TuneRerank")
	if r <= 0 {
		return
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	s.quantRerank = r
	if s.annIndex != nil && s.annIndex.Quantized() {
		if s.sharedANN {
			s.annIndex = s.annIndex.Clone() // the snapshot keeps its depth
			s.sharedANN = false
		}
		s.annIndex.SetRerank(r)
	}
}

// reconcileQuantLocked brings a built index's quantization state in line
// with the store's configured mode (annMu held). A frozen snapshot still
// sharing the index keeps its version: the store clones before
// converting, exactly as every other post-freeze index mutation does.
func (s *Store) reconcileQuantLocked() {
	idx := s.annIndex
	if idx == nil || s.annStale {
		return
	}
	wantSQ8 := s.quantMode == QuantSQ8
	if wantSQ8 == idx.Quantized() {
		if wantSQ8 && s.quantRerank > 0 && idx.Rerank() != s.quantRerank {
			if s.sharedANN {
				idx = idx.Clone()
				s.annIndex = idx
				s.sharedANN = false
			}
			idx.SetRerank(s.quantRerank)
		}
		return
	}
	if s.sharedANN {
		idx = idx.Clone()
		s.annIndex = idx
		s.sharedANN = false
	}
	if wantSQ8 {
		idx.QuantizeSQ8(s.quantRerank)
	} else {
		idx.DisableQuant()
	}
}

// TuneEfSearch adjusts the query-time beam width on both the configured
// parameters and any built (or adopted) index, without discarding the
// index — unlike EnableANN, which forces a rebuild. Non-positive values
// are ignored. Requires the same external synchronisation as Add.
func (s *Store) TuneEfSearch(ef int) {
	s.mutable("TuneEfSearch")
	if ef <= 0 {
		return
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	s.annParams.EfSearch = ef
	if s.annIndex != nil {
		if s.sharedANN {
			s.annIndex = s.annIndex.Clone() // the snapshot keeps its beam width
			s.sharedANN = false
		}
		s.annIndex.SetEfSearch(ef)
	}
}

// AdoptANN installs an externally built (typically deserialised) HNSW
// index as the store's current index, replacing any existing one. The
// index must cover this store's vectors under the store's ids; Add and
// SetVector maintain it incrementally from here on, exactly as if the
// store had built it itself. The store's configured ANN parameters (used
// for any future rebuild) are left untouched, but the quantization
// configuration is taken FROM the adopted index — it arrives with its
// codes and codebook (or without), and that state must survive the next
// reconcile instead of being converted back to whatever the store had.
func (s *Store) AdoptANN(idx *ann.Index) error {
	s.mutable("AdoptANN")
	if idx.Dim() != s.dim {
		return fmt.Errorf("embed: adopting index of dim %d into store of dim %d", idx.Dim(), s.dim)
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	s.annIndex = idx
	s.annStale = false
	s.sharedANN = false
	if idx.Quantized() {
		s.quantMode = QuantSQ8
		s.quantRerank = idx.Rerank()
	} else {
		s.quantMode = QuantOff
		s.quantRerank = 0
	}
	return nil
}

// MemoryStats breaks down the store's resident data payload: the
// embedding matrix, the row-norm cache, and — when an ANN index is
// built — its graph rows, SQ8 codes and adjacency lists. Figures are
// payload bytes (slice headers and the vocabulary excluded), which is
// what the precision choice actually moves; the serving stats endpoint
// and the footprint guard read them.
type MemoryStats struct {
	Precision      string `json:"precision"`
	MatrixBytes    int64  `json:"matrix_bytes"`
	NormBytes      int64  `json:"norm_bytes"`
	GraphVecBytes  int64  `json:"graph_vector_bytes"`
	CodeBytes      int64  `json:"code_bytes"`
	AdjacencyBytes int64  `json:"adjacency_bytes"`
	TotalBytes     int64  `json:"total_bytes"`
}

// MemoryStats reports the store's payload footprint. Safe concurrently
// with reads (it takes the internal locks a live store's lazy builds
// use); requires the usual external exclusion against writers.
func (s *Store) MemoryStats() MemoryStats {
	ms := MemoryStats{Precision: s.precision.String()}
	if s.matrix != nil {
		ms.MatrixBytes = int64(8 * len(s.matrix.Data))
	}
	if s.matrix32 != nil {
		ms.MatrixBytes = int64(4 * len(s.matrix32.Data))
	}
	if s.frozen {
		ms.NormBytes = int64(8*len(s.norms) + 4*len(s.norms32))
		if s.annIndex != nil {
			ann := s.annIndex.MemoryStats()
			ms.GraphVecBytes = ann.VectorBytes
			ms.CodeBytes = ann.CodeBytes
			ms.AdjacencyBytes = ann.AdjacencyBytes
		}
	} else {
		s.normMu.Lock()
		ms.NormBytes = int64(8*len(s.norms) + 4*len(s.norms32))
		s.normMu.Unlock()
		s.annMu.Lock()
		if s.annIndex != nil && !s.annStale {
			ann := s.annIndex.MemoryStats()
			ms.GraphVecBytes = ann.VectorBytes
			ms.CodeBytes = ann.CodeBytes
			ms.AdjacencyBytes = ann.AdjacencyBytes
		}
		s.annMu.Unlock()
	}
	ms.TotalBytes = ms.MatrixBytes + ms.NormBytes + ms.GraphVecBytes + ms.CodeBytes + ms.AdjacencyBytes
	return ms
}

// ANNIndex returns the built HNSW index, or nil when disabled, stale or
// not yet built. Intended for introspection (serving stats).
func (s *Store) ANNIndex() *ann.Index {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	if s.annStale {
		return nil
	}
	return s.annIndex
}

// WarmANN builds the HNSW index now if approximate search applies and it
// is missing or stale. Serving paths call this after training and after
// bulk repairs so the first live query never pays the O(n) build inside
// its request. On a frozen snapshot it is a no-op: Freeze already
// materialised the index.
func (s *Store) WarmANN() {
	if s.frozen {
		return
	}
	s.ensureANN()
}

// queryANN returns the index TopK should use. A frozen snapshot reads
// its (immutable) pointer directly — no lock, no lazy build; live stores
// go through the build-if-needed path.
func (s *Store) queryANN() *ann.Index {
	if s.frozen {
		if s.annThreshold <= 0 || len(s.words) < s.annThreshold {
			return nil
		}
		return s.annIndex
	}
	return s.ensureANN()
}

// ensureANN returns a ready index when approximate search applies to this
// store, building or rebuilding it if needed. Concurrent callers
// serialise on the build; the returned index is immutable to readers.
func (s *Store) ensureANN() *ann.Index {
	if s.annThreshold <= 0 || len(s.words) < s.annThreshold {
		return nil
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	if s.annIndex != nil && !s.annStale {
		s.reconcileQuantLocked()
		return s.annIndex
	}
	var idx *ann.Index
	if s.precision == F32 {
		// The graph stores float32 rows too: the store's rounded rows
		// pass through a float64 widening for unit-normalisation and are
		// narrowed again inside the index.
		idx = ann.New32(s.dim, s.annParams)
	} else {
		idx = ann.New(s.dim, s.annParams)
	}
	for id := range s.words {
		r := s.widenRowLocked(id)
		if vec.Norm(r) == 0 {
			continue // the exact scan skips zero vectors too
		}
		// Insert only fails on dimension mismatch or zero norm, both
		// excluded here.
		_ = idx.Insert(id, r)
	}
	s.annIndex = idx
	s.annStale = false
	s.sharedANN = false // freshly built, private to the live store
	s.reconcileQuantLocked()
	return s.annIndex
}

// Match is one nearest-neighbour result.
type Match struct {
	ID    int
	Word  string
	Score float64 // cosine similarity
}

// TopK returns the k entries most cosine-similar to query, excluding any
// id for which skip returns true (skip may be nil). Results are sorted by
// descending score, ties broken by ascending id for determinism.
// Non-positive k returns nil and k is clamped to the vocabulary size —
// on both the approximate and the exact path, so switching between them
// never changes how out-of-range k behaves.
//
// At or above the ANN threshold (see EnableANN) the query is answered by
// the HNSW index — approximate, with recall tuned by ann.Params — and
// falls back to the exact scan below it or when ANN is disabled. Use
// TopKExact to force the exact answer.
func (s *Store) TopK(query []float64, k int, skip func(id int) bool) []Match {
	return s.TopKAppend(query, k, skip, nil)
}

// resultPool recycles the intermediate ann.Result buffer the ANN path
// needs before id->word resolution, keeping TopKAppend allocation-free.
var resultPool = sync.Pool{New: func() any { return new([]ann.Result) }}

// q32Pool recycles the narrowed-query buffer of the float32 exact scan.
var q32Pool = sync.Pool{New: func() any { return new([]float32) }}

// TopKAppend is TopK with caller-owned result storage: matches are
// written into dst[:0] and the slice (grown if its capacity was short)
// is returned. With cap(dst) >= k and warm scratch pools a query on
// either path performs no allocation.
func (s *Store) TopKAppend(query []float64, k int, skip func(id int) bool, dst []Match) []Match {
	return s.TopKAppendStats(query, k, skip, dst, nil)
}

// TopKAppendStats is TopKAppend with traversal telemetry for the
// serving layer: when st is non-nil it is filled with the query's
// per-stage stats (see ann.SearchStats). On the exact-scan fallback the
// whole scan counts as the walk, every row is a scored node, and hops
// and re-rank stay zero. A nil st adds no work to either path.
func (s *Store) TopKAppendStats(query []float64, k int, skip func(id int) bool, dst []Match, st *ann.SearchStats) []Match {
	if len(query) != s.dim {
		panic("embed: TopK query dimension mismatch")
	}
	if st != nil {
		*st = ann.SearchStats{}
	}
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	if k > len(s.words) {
		k = len(s.words) // bounds the result growth on either path
	}
	if idx := s.queryANN(); idx != nil {
		buf := resultPool.Get().(*[]ann.Result)
		results := idx.TopKAppendStats(query, k, skip, *buf, st)
		for _, r := range results {
			dst = append(dst, Match{ID: r.ID, Word: s.words[r.ID], Score: r.Score})
		}
		*buf = results
		resultPool.Put(buf)
		return dst
	}
	if st == nil {
		return s.TopKExactAppend(query, k, skip, dst)
	}
	start := time.Now()
	dst = s.TopKExactAppend(query, k, skip, dst)
	st.WalkNs = time.Since(start).Nanoseconds()
	st.Nodes = len(s.words)
	return dst
}

// TopKExact is the brute-force O(n·d) scan: always exact, regardless of
// the ANN configuration. Candidates are kept in a bounded min-heap, so a
// scan costs O(n·d + n·log k) instead of the O(n·k·log k) a
// sort-per-candidate would; row norms come from the store's cache rather
// than being recomputed per query.
func (s *Store) TopKExact(query []float64, k int, skip func(id int) bool) []Match {
	return s.TopKExactAppend(query, k, skip, nil)
}

// TopKExactAppend is TopKExact with caller-owned result storage: the
// bounded min-heap is built directly in dst[:0], so with cap(dst) >= k
// the scan performs no allocation at all. Frozen snapshots read the
// materialised norm cache without taking the norm mutex.
func (s *Store) TopKExactAppend(query []float64, k int, skip func(id int) bool, dst []Match) []Match {
	if len(query) != s.dim {
		panic("embed: TopK query dimension mismatch")
	}
	dst = dst[:0]
	if k <= 0 {
		return dst
	}
	if k > len(s.words) {
		k = len(s.words) // bounds the result growth
	}
	qn := vec.Norm(query)
	if qn == 0 {
		return dst
	}
	// Min-heap of the best k so far: the root is the weakest kept match
	// (lowest score; among ties, the highest id), so a candidate beats the
	// buffer iff its score strictly exceeds the root's — ties keep the
	// earlier entry, exactly as the id-ordered scan always has.
	heap := dst
	if s.precision == F32 {
		var norms []float32
		if s.frozen {
			norms = s.norms32 // materialised at Freeze, immutable from then on
		} else {
			norms = s.rowNorms32()
		}
		// Narrow the query once; the scan then streams half the bytes per
		// row it would in float64, with float64 accumulation inside Dot32.
		qbuf := q32Pool.Get().(*[]float32)
		q32 := *qbuf
		if cap(q32) < s.dim {
			q32 = make([]float32, s.dim)
		}
		q32 = vec.Narrow(q32[:s.dim], query)
		for id := range s.words {
			if skip != nil && skip(id) {
				continue
			}
			rn := norms[id]
			if rn == 0 {
				continue
			}
			score := vec.Dot32(q32, s.row32(id)) / (qn * float64(rn))
			if len(heap) < k {
				heap = append(heap, Match{ID: id, Word: s.words[id], Score: score})
				siftUp(heap, len(heap)-1)
				continue
			}
			if score <= heap[0].Score {
				continue
			}
			heap[0] = Match{ID: id, Word: s.words[id], Score: score}
			siftDown(heap, 0)
		}
		*qbuf = q32
		q32Pool.Put(qbuf)
	} else {
		var norms []float64
		if s.frozen {
			norms = s.norms // materialised at Freeze, immutable from then on
		} else {
			norms = s.rowNorms()
		}
		for id := range s.words {
			if skip != nil && skip(id) {
				continue
			}
			rn := norms[id]
			if rn == 0 {
				continue
			}
			score := vec.Dot(query, s.row(id)) / (qn * rn)
			if len(heap) < k {
				heap = append(heap, Match{ID: id, Word: s.words[id], Score: score})
				siftUp(heap, len(heap)-1)
				continue
			}
			if score <= heap[0].Score {
				continue
			}
			heap[0] = Match{ID: id, Word: s.words[id], Score: score}
			siftDown(heap, 0)
		}
	}
	slices.SortFunc(heap, func(a, b Match) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return heap
}

// matchLess orders the bounded heap: weakest match first — ascending
// score, ties broken by descending id so that among equal scores the
// latest-seen entry is evicted first.
func matchLess(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func siftUp(h []Match, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !matchLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []Match, i int) {
	for {
		least := i
		if l := 2*i + 1; l < len(h) && matchLess(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < len(h) && matchLess(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// Analogy computes the classic a - b + c query ("king" - "man" + "woman")
// and returns the top-k neighbours of the result, excluding a, b and c.
func (s *Store) Analogy(a, b, c string, k int) ([]Match, error) {
	return s.AnalogyStats(a, b, c, k, nil)
}

// AnalogyStats is Analogy with traversal telemetry: when st is non-nil
// it receives the underlying search's stats (see TopKAppendStats), so a
// serving layer can trace analogy queries exactly like neighbour
// queries.
func (s *Store) AnalogyStats(a, b, c string, k int, st *ann.SearchStats) ([]Match, error) {
	va, okA := s.VectorOf(a)
	vb, okB := s.VectorOf(b)
	vc, okC := s.VectorOf(c)
	if !okA || !okB || !okC {
		return nil, fmt.Errorf("embed: analogy term missing (%q:%v %q:%v %q:%v)", a, okA, b, okB, c, okC)
	}
	q := vec.Clone(va)
	vec.Axpy(q, -1, vb)
	vec.Axpy(q, 1, vc)
	exclude := map[int]bool{}
	for _, w := range []string{a, b, c} {
		if id, ok := s.ID(w); ok {
			exclude[id] = true
		}
	}
	return s.TopKAppendStats(q, k, func(id int) bool { return exclude[id] }, nil, st), nil
}
