// Package embed implements the word embedding store RETRO retrofits
// against: a vocabulary mapped to dense vectors, with serialisation,
// nearest-neighbour queries and the concatenation combiner of §4.6.
package embed

import (
	"fmt"
	"sort"

	"github.com/retrodb/retro/internal/vec"
)

// Store holds an embedding matrix with a string vocabulary. Rows of the
// matrix correspond 1:1 to vocabulary entries.
type Store struct {
	dim    int
	words  []string
	index  map[string]int
	matrix *vec.Matrix
}

// NewStore creates an empty store for vectors of the given dimensionality.
func NewStore(dim int) *Store {
	if dim <= 0 {
		panic(fmt.Sprintf("embed: non-positive dimension %d", dim))
	}
	return &Store{dim: dim, index: make(map[string]int)}
}

// Dim returns the vector dimensionality.
func (s *Store) Dim() int { return s.dim }

// Len returns the vocabulary size.
func (s *Store) Len() int { return len(s.words) }

// Add inserts a word with its vector and returns the assigned id. Adding
// an existing word overwrites its vector and returns the existing id.
func (s *Store) Add(word string, vector []float64) int {
	if len(vector) != s.dim {
		panic(fmt.Sprintf("embed: vector for %q has dim %d, store has %d", word, len(vector), s.dim))
	}
	if id, ok := s.index[word]; ok {
		copy(s.row(id), vector)
		return id
	}
	id := len(s.words)
	s.words = append(s.words, word)
	s.index[word] = id
	s.growTo(id + 1)
	copy(s.row(id), vector)
	return id
}

func (s *Store) growTo(n int) {
	if s.matrix == nil {
		s.matrix = &vec.Matrix{Rows: 0, Cols: s.dim, Stride: s.dim}
	}
	need := n * s.dim
	if cap(s.matrix.Data) < need {
		grown := make([]float64, need, maxInt(need, 2*cap(s.matrix.Data)))
		copy(grown, s.matrix.Data)
		s.matrix.Data = grown
	} else {
		s.matrix.Data = s.matrix.Data[:need]
	}
	s.matrix.Rows = n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (s *Store) row(id int) []float64 { return s.matrix.Row(id) }

// ID returns the id of word.
func (s *Store) ID(word string) (int, bool) {
	id, ok := s.index[word]
	return id, ok
}

// Word returns the word with the given id.
func (s *Store) Word(id int) string { return s.words[id] }

// Words returns the vocabulary in id order. The slice must not be mutated.
func (s *Store) Words() []string { return s.words }

// Vector returns a read-only view of the vector for id. Callers must not
// mutate it; use SetVector to change a stored vector.
func (s *Store) Vector(id int) []float64 { return s.row(id) }

// VectorOf returns the vector for a word, if present.
func (s *Store) VectorOf(word string) ([]float64, bool) {
	id, ok := s.index[word]
	if !ok {
		return nil, false
	}
	return s.row(id), true
}

// SetVector overwrites the vector stored for id.
func (s *Store) SetVector(id int, vector []float64) {
	if len(vector) != s.dim {
		panic("embed: SetVector dimension mismatch")
	}
	copy(s.row(id), vector)
}

// Matrix exposes the underlying (Len x Dim) matrix. Rows are live views:
// mutating them mutates the store.
func (s *Store) Matrix() *vec.Matrix {
	if s.matrix == nil {
		return vec.NewMatrix(0, s.dim)
	}
	return s.matrix
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	out := NewStore(s.dim)
	for id, w := range s.words {
		out.Add(w, s.row(id))
	}
	return out
}

// NormalizeAll scales every vector to unit L2 norm in place (zero vectors
// stay zero). The paper normalises embeddings before feeding them to the
// task networks (§5.5).
func (s *Store) NormalizeAll() {
	for id := range s.words {
		vec.Normalize(s.row(id))
	}
}

// Match is one nearest-neighbour result.
type Match struct {
	ID    int
	Word  string
	Score float64 // cosine similarity
}

// TopK returns the k entries most cosine-similar to query, excluding any
// id for which skip returns true (skip may be nil). Results are sorted by
// descending score, ties broken by ascending id for determinism.
func (s *Store) TopK(query []float64, k int, skip func(id int) bool) []Match {
	if len(query) != s.dim {
		panic("embed: TopK query dimension mismatch")
	}
	if k <= 0 {
		return nil
	}
	qn := vec.Norm(query)
	if qn == 0 {
		return nil
	}
	matches := make([]Match, 0, k+1)
	worst := -2.0
	for id := range s.words {
		if skip != nil && skip(id) {
			continue
		}
		r := s.row(id)
		rn := vec.Norm(r)
		if rn == 0 {
			continue
		}
		score := vec.Dot(query, r) / (qn * rn)
		// At a full buffer, a score tied with the current worst keeps the
		// earlier (lower-id) entry because iteration is in id order.
		if len(matches) == k && score <= worst {
			continue
		}
		matches = append(matches, Match{ID: id, Word: s.words[id], Score: score})
		sort.Slice(matches, func(i, j int) bool {
			if matches[i].Score != matches[j].Score {
				return matches[i].Score > matches[j].Score
			}
			return matches[i].ID < matches[j].ID
		})
		if len(matches) > k {
			matches = matches[:k]
		}
		worst = matches[len(matches)-1].Score
	}
	return matches
}

// Analogy computes the classic a - b + c query ("king" - "man" + "woman")
// and returns the top-k neighbours of the result, excluding a, b and c.
func (s *Store) Analogy(a, b, c string, k int) ([]Match, error) {
	va, okA := s.VectorOf(a)
	vb, okB := s.VectorOf(b)
	vc, okC := s.VectorOf(c)
	if !okA || !okB || !okC {
		return nil, fmt.Errorf("embed: analogy term missing (%q:%v %q:%v %q:%v)", a, okA, b, okB, c, okC)
	}
	q := vec.Clone(va)
	vec.Axpy(q, -1, vb)
	vec.Axpy(q, 1, vc)
	exclude := map[int]bool{}
	for _, w := range []string{a, b, c} {
		if id, ok := s.ID(w); ok {
			exclude[id] = true
		}
	}
	return s.TopK(q, k, func(id int) bool { return exclude[id] }), nil
}
