// Package embed implements the word embedding store RETRO retrofits
// against: a vocabulary mapped to dense vectors, with serialisation,
// nearest-neighbour queries and the concatenation combiner of §4.6.
package embed

import (
	"fmt"
	"sort"
	"sync"

	"github.com/retrodb/retro/internal/ann"
	"github.com/retrodb/retro/internal/vec"
)

// DefaultANNThreshold is the vocabulary size at which TopK switches from
// the exact scan to the HNSW index. Below it brute force is already fast
// and exact; above it the graph wins by orders of magnitude.
const DefaultANNThreshold = 4096

// Store holds an embedding matrix with a string vocabulary. Rows of the
// matrix correspond 1:1 to vocabulary entries.
//
// Reads (TopK, Analogy, Vector lookups) are safe to run concurrently with
// each other — including the lazy ANN index build, which is serialised
// internally. Mutations (Add, SetVector, NormalizeAll, ...) require
// external synchronisation against reads and other writes.
type Store struct {
	dim    int
	words  []string
	index  map[string]int
	matrix *vec.Matrix

	// Approximate-search state. The HNSW index is built lazily on the
	// first TopK at or above annThreshold and maintained incrementally by
	// Add/SetVector; wholesale mutations mark it stale instead.
	annMu        sync.Mutex
	annIndex     *ann.Index
	annStale     bool
	annParams    ann.Params
	annThreshold int

	// Cached L2 row norms for the exact scan: built lazily on the first
	// TopKExact and maintained by Add/SetVector/NormalizeAll/RefreshRow,
	// so the hot path stops recomputing every norm per query.
	normMu sync.Mutex
	norms  []float64
}

// NewStore creates an empty store for vectors of the given dimensionality.
// ANN search is enabled by default at DefaultANNThreshold.
func NewStore(dim int) *Store {
	if dim <= 0 {
		panic(fmt.Sprintf("embed: non-positive dimension %d", dim))
	}
	return &Store{
		dim:          dim,
		index:        make(map[string]int),
		annParams:    ann.DefaultParams(),
		annThreshold: DefaultANNThreshold,
	}
}

// Dim returns the vector dimensionality.
func (s *Store) Dim() int { return s.dim }

// Len returns the vocabulary size.
func (s *Store) Len() int { return len(s.words) }

// Add inserts a word with its vector and returns the assigned id. Adding
// an existing word overwrites its vector and returns the existing id.
// A built ANN index is updated in place.
func (s *Store) Add(word string, vector []float64) int {
	if len(vector) != s.dim {
		panic(fmt.Sprintf("embed: vector for %q has dim %d, store has %d", word, len(vector), s.dim))
	}
	if id, ok := s.index[word]; ok {
		copy(s.row(id), vector)
		s.normUpdate(id)
		s.annUpdate(id)
		return id
	}
	id := len(s.words)
	s.words = append(s.words, word)
	s.index[word] = id
	s.growTo(id + 1)
	copy(s.row(id), vector)
	s.normUpdate(id)
	s.annUpdate(id)
	return id
}

// AddStaged inserts a word and vector like Add but defers the derived
// per-row state — the ANN graph node and the cached norm — to a later
// RefreshRow(id). The write path stages new values with their
// provisional W0 vectors, repairs them, and only then registers the
// final vector, instead of paying a beam-search insert for a vector the
// repair is about to tombstone and replace. Until RefreshRow runs, the
// row is invisible to a built ANN index and the norm cache is dropped
// lazily, so the staging window must not overlap reads (the same
// external synchronisation Add already requires).
func (s *Store) AddStaged(word string, vector []float64) int {
	if len(vector) != s.dim {
		panic(fmt.Sprintf("embed: vector for %q has dim %d, store has %d", word, len(vector), s.dim))
	}
	if id, ok := s.index[word]; ok {
		copy(s.row(id), vector)
		return id
	}
	id := len(s.words)
	s.words = append(s.words, word)
	s.index[word] = id
	s.growTo(id + 1)
	copy(s.row(id), vector)
	return id
}

// normUpdate maintains the cached norm of one row; a cache that was never
// built stays unbuilt (it fills lazily on the first exact scan).
func (s *Store) normUpdate(id int) {
	s.normMu.Lock()
	defer s.normMu.Unlock()
	if s.norms == nil {
		return
	}
	for len(s.norms) < id {
		// Rows between the cache's tail and id: AddStaged appends rows
		// without touching the cache, so a later RefreshRow on a higher
		// id must backfill the staged rows in between.
		s.norms = append(s.norms, vec.Norm(s.row(len(s.norms))))
	}
	if id == len(s.norms) {
		s.norms = append(s.norms, vec.Norm(s.row(id)))
		return
	}
	s.norms[id] = vec.Norm(s.row(id))
}

// rowNorms returns the norm cache, building it on first use. Concurrent
// readers serialise only on the build.
func (s *Store) rowNorms() []float64 {
	s.normMu.Lock()
	defer s.normMu.Unlock()
	if len(s.norms) != len(s.words) {
		norms := make([]float64, len(s.words))
		for id := range norms {
			norms[id] = vec.Norm(s.row(id))
		}
		s.norms = norms
	}
	return s.norms
}

// annUpdate folds a single-row change into a built index: non-zero rows
// are (re)inserted, zero rows removed (the exact scan skips them too).
func (s *Store) annUpdate(id int) {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	if s.annIndex == nil || s.annStale {
		return
	}
	r := s.row(id)
	if vec.Norm(r) == 0 {
		s.annIndex.Delete(id)
	} else if err := s.annIndex.Insert(id, r); err != nil {
		s.annStale = true // can't happen (dim checked, non-zero), but stay safe
	}
	// Every overwrite tombstones the old node. Once the dead outnumber the
	// living the graph wastes more traversal than a rebuild costs, and
	// recall degrades (the query beam only widens so far) — rebuild lazily.
	if s.annIndex.Deleted() > s.annIndex.Len() {
		s.annStale = true
	}
}

func (s *Store) growTo(n int) {
	if s.matrix == nil {
		s.matrix = &vec.Matrix{Rows: 0, Cols: s.dim, Stride: s.dim}
	}
	need := n * s.dim
	if cap(s.matrix.Data) < need {
		grown := make([]float64, need, maxInt(need, 2*cap(s.matrix.Data)))
		copy(grown, s.matrix.Data)
		s.matrix.Data = grown
	} else {
		s.matrix.Data = s.matrix.Data[:need]
	}
	s.matrix.Rows = n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (s *Store) row(id int) []float64 { return s.matrix.Row(id) }

// ID returns the id of word.
func (s *Store) ID(word string) (int, bool) {
	id, ok := s.index[word]
	return id, ok
}

// Word returns the word with the given id.
func (s *Store) Word(id int) string { return s.words[id] }

// Words returns the vocabulary in id order. The slice must not be mutated.
func (s *Store) Words() []string { return s.words }

// Vector returns a read-only view of the vector for id. Callers must not
// mutate it; use SetVector to change a stored vector.
func (s *Store) Vector(id int) []float64 { return s.row(id) }

// VectorOf returns the vector for a word, if present.
func (s *Store) VectorOf(word string) ([]float64, bool) {
	id, ok := s.index[word]
	if !ok {
		return nil, false
	}
	return s.row(id), true
}

// SetVector overwrites the vector stored for id. A built ANN index is
// updated in place.
func (s *Store) SetVector(id int, vector []float64) {
	if len(vector) != s.dim {
		panic("embed: SetVector dimension mismatch")
	}
	copy(s.row(id), vector)
	s.normUpdate(id)
	s.annUpdate(id)
}

// RefreshRow re-syncs the store's derived per-row state — the cached row
// norm and the ANN graph node — after the caller mutated row id in place
// through Matrix(). The incremental repair path writes re-solved vectors
// directly into the matrix and then refreshes each touched row, instead
// of copying every vector through SetVector.
func (s *Store) RefreshRow(id int) {
	s.normUpdate(id)
	s.annUpdate(id)
}

// Matrix exposes the underlying (Len x Dim) matrix. Rows are live views:
// mutating them mutates the store; callers that do so must call
// RefreshRow for each changed row (or InvalidateANN for bulk rewrites)
// so the ANN index and norm cache stay in step.
func (s *Store) Matrix() *vec.Matrix {
	if s.matrix == nil {
		return vec.NewMatrix(0, s.dim)
	}
	return s.matrix
}

// Clone returns a deep copy of the store. The ANN configuration is
// carried over; the index itself is rebuilt lazily on the copy.
func (s *Store) Clone() *Store {
	out := NewStore(s.dim)
	out.annParams = s.annParams
	out.annThreshold = s.annThreshold
	for id, w := range s.words {
		out.Add(w, s.row(id))
	}
	return out
}

// NormalizeAll scales every vector to unit L2 norm in place (zero vectors
// stay zero). The paper normalises embeddings before feeding them to the
// task networks (§5.5).
func (s *Store) NormalizeAll() {
	for id := range s.words {
		vec.Normalize(s.row(id))
		s.normUpdate(id)
	}
	// A built ANN index stays valid: it already stores unit-normalised
	// copies, and cosine similarity is scale-invariant, so normalising
	// the rows changes neither the ordering nor (beyond last-ulp
	// rounding) the returned scores.
}

// EnableANN turns on approximate search above the given vocabulary-size
// threshold (0 selects DefaultANNThreshold) with the given graph
// parameters (zero fields select ann defaults). Any built index is
// discarded and rebuilt lazily with the new settings.
func (s *Store) EnableANN(threshold int, p ann.Params) {
	if threshold <= 0 {
		threshold = DefaultANNThreshold
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	s.annThreshold = threshold
	s.annParams = p
	s.annIndex = nil
	s.annStale = false
}

// DisableANN makes every TopK use the exact scan.
func (s *Store) DisableANN() {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	s.annThreshold = 0
	s.annIndex = nil
	s.annStale = false
}

// InvalidateANN marks a built index stale so the next TopK rebuilds it,
// and drops the row-norm cache. Callers that bulk-rewrite vectors through
// Matrix() must invoke this (single-row mutations use RefreshRow).
func (s *Store) InvalidateANN() {
	s.annMu.Lock()
	if s.annIndex != nil {
		s.annStale = true
	}
	s.annMu.Unlock()
	s.normMu.Lock()
	s.norms = nil
	s.normMu.Unlock()
}

// ANNThreshold returns the vocabulary size at which TopK switches to the
// HNSW index (0 when ANN is disabled).
func (s *Store) ANNThreshold() int {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	return s.annThreshold
}

// ANNParams returns the graph parameters a (re)built index would use.
func (s *Store) ANNParams() ann.Params {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	return s.annParams
}

// TuneEfSearch adjusts the query-time beam width on both the configured
// parameters and any built (or adopted) index, without discarding the
// index — unlike EnableANN, which forces a rebuild. Non-positive values
// are ignored. Requires the same external synchronisation as Add.
func (s *Store) TuneEfSearch(ef int) {
	if ef <= 0 {
		return
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	s.annParams.EfSearch = ef
	if s.annIndex != nil {
		s.annIndex.SetEfSearch(ef)
	}
}

// AdoptANN installs an externally built (typically deserialised) HNSW
// index as the store's current index, replacing any existing one. The
// index must cover this store's vectors under the store's ids; Add and
// SetVector maintain it incrementally from here on, exactly as if the
// store had built it itself. The store's configured ANN parameters (used
// for any future rebuild) are left untouched.
func (s *Store) AdoptANN(idx *ann.Index) error {
	if idx.Dim() != s.dim {
		return fmt.Errorf("embed: adopting index of dim %d into store of dim %d", idx.Dim(), s.dim)
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	s.annIndex = idx
	s.annStale = false
	return nil
}

// ANNIndex returns the built HNSW index, or nil when disabled, stale or
// not yet built. Intended for introspection (serving stats).
func (s *Store) ANNIndex() *ann.Index {
	s.annMu.Lock()
	defer s.annMu.Unlock()
	if s.annStale {
		return nil
	}
	return s.annIndex
}

// WarmANN builds the HNSW index now if approximate search applies and it
// is missing or stale. Serving paths call this after training and after
// bulk repairs so the first live query never pays the O(n) build inside
// its request.
func (s *Store) WarmANN() {
	s.ensureANN()
}

// ensureANN returns a ready index when approximate search applies to this
// store, building or rebuilding it if needed. Concurrent callers
// serialise on the build; the returned index is immutable to readers.
func (s *Store) ensureANN() *ann.Index {
	if s.annThreshold <= 0 || len(s.words) < s.annThreshold {
		return nil
	}
	s.annMu.Lock()
	defer s.annMu.Unlock()
	if s.annIndex != nil && !s.annStale {
		return s.annIndex
	}
	idx := ann.New(s.dim, s.annParams)
	for id := range s.words {
		r := s.row(id)
		if vec.Norm(r) == 0 {
			continue // the exact scan skips zero vectors too
		}
		// Insert only fails on dimension mismatch or zero norm, both
		// excluded here.
		_ = idx.Insert(id, r)
	}
	s.annIndex = idx
	s.annStale = false
	return idx
}

// Match is one nearest-neighbour result.
type Match struct {
	ID    int
	Word  string
	Score float64 // cosine similarity
}

// TopK returns the k entries most cosine-similar to query, excluding any
// id for which skip returns true (skip may be nil). Results are sorted by
// descending score, ties broken by ascending id for determinism.
// Non-positive k returns nil and k is clamped to the vocabulary size —
// on both the approximate and the exact path, so switching between them
// never changes how out-of-range k behaves.
//
// At or above the ANN threshold (see EnableANN) the query is answered by
// the HNSW index — approximate, with recall tuned by ann.Params — and
// falls back to the exact scan below it or when ANN is disabled. Use
// TopKExact to force the exact answer.
func (s *Store) TopK(query []float64, k int, skip func(id int) bool) []Match {
	if len(query) != s.dim {
		panic("embed: TopK query dimension mismatch")
	}
	if k <= 0 {
		return nil
	}
	if k > len(s.words) {
		k = len(s.words) // bounds the result allocation on either path
	}
	if idx := s.ensureANN(); idx != nil {
		results := idx.TopK(query, k, skip)
		matches := make([]Match, len(results))
		for i, r := range results {
			matches[i] = Match{ID: r.ID, Word: s.words[r.ID], Score: r.Score}
		}
		return matches
	}
	return s.TopKExact(query, k, skip)
}

// TopKExact is the brute-force O(n·d) scan: always exact, regardless of
// the ANN configuration. Candidates are kept in a bounded min-heap, so a
// scan costs O(n·d + n·log k) instead of the O(n·k·log k) a
// sort-per-candidate would; row norms come from the store's cache rather
// than being recomputed per query.
func (s *Store) TopKExact(query []float64, k int, skip func(id int) bool) []Match {
	if len(query) != s.dim {
		panic("embed: TopK query dimension mismatch")
	}
	if k <= 0 {
		return nil
	}
	if k > len(s.words) {
		k = len(s.words) // bounds the result allocation
	}
	qn := vec.Norm(query)
	if qn == 0 {
		return nil
	}
	norms := s.rowNorms()
	// Min-heap of the best k so far: the root is the weakest kept match
	// (lowest score; among ties, the highest id), so a candidate beats the
	// buffer iff its score strictly exceeds the root's — ties keep the
	// earlier entry, exactly as the id-ordered scan always has.
	heap := make([]Match, 0, k)
	for id := range s.words {
		if skip != nil && skip(id) {
			continue
		}
		rn := norms[id]
		if rn == 0 {
			continue
		}
		score := vec.Dot(query, s.row(id)) / (qn * rn)
		if len(heap) < k {
			heap = append(heap, Match{ID: id, Word: s.words[id], Score: score})
			siftUp(heap, len(heap)-1)
			continue
		}
		if score <= heap[0].Score {
			continue
		}
		heap[0] = Match{ID: id, Word: s.words[id], Score: score}
		siftDown(heap, 0)
	}
	sort.Slice(heap, func(i, j int) bool {
		if heap[i].Score != heap[j].Score {
			return heap[i].Score > heap[j].Score
		}
		return heap[i].ID < heap[j].ID
	})
	return heap
}

// matchLess orders the bounded heap: weakest match first — ascending
// score, ties broken by descending id so that among equal scores the
// latest-seen entry is evicted first.
func matchLess(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

func siftUp(h []Match, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !matchLess(h[i], h[parent]) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func siftDown(h []Match, i int) {
	for {
		least := i
		if l := 2*i + 1; l < len(h) && matchLess(h[l], h[least]) {
			least = l
		}
		if r := 2*i + 2; r < len(h) && matchLess(h[r], h[least]) {
			least = r
		}
		if least == i {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// Analogy computes the classic a - b + c query ("king" - "man" + "woman")
// and returns the top-k neighbours of the result, excluding a, b and c.
func (s *Store) Analogy(a, b, c string, k int) ([]Match, error) {
	va, okA := s.VectorOf(a)
	vb, okB := s.VectorOf(b)
	vc, okC := s.VectorOf(c)
	if !okA || !okB || !okC {
		return nil, fmt.Errorf("embed: analogy term missing (%q:%v %q:%v %q:%v)", a, okA, b, okB, c, okC)
	}
	q := vec.Clone(va)
	vec.Axpy(q, -1, vb)
	vec.Axpy(q, 1, vc)
	exclude := map[int]bool{}
	for _, w := range []string{a, b, c} {
		if id, ok := s.ID(w); ok {
			exclude[id] = true
		}
	}
	return s.TopK(q, k, func(id int) bool { return exclude[id] }), nil
}
