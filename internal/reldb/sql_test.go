package reldb

import (
	"strings"
	"testing"
)

func sqlFixture(t *testing.T) *DB {
	t.Helper()
	db := New()
	stmts := []string{
		`CREATE TABLE movies (id INT PRIMARY KEY, title TEXT NOT NULL, budget FLOAT, language TEXT)`,
		`CREATE TABLE persons (id INT PRIMARY KEY, name TEXT)`,
		`CREATE TABLE directed_by (movie_id INT REFERENCES movies(id), person_id INT REFERENCES persons(id))`,
		`INSERT INTO movies VALUES (1, 'Brazil', 15000000, 'en'), (2, 'Alien', 11000000, 'en'), (3, 'Amelie', 10000000, 'fr')`,
		`INSERT INTO persons VALUES (10, 'Terry Gilliam'), (11, 'Ridley Scott'), (12, 'Jean-Pierre Jeunet')`,
		`INSERT INTO directed_by VALUES (1, 10), (2, 11), (3, 12)`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%v\n  in: %s", err, s)
		}
	}
	return db
}

func TestExecCreateInsertSelect(t *testing.T) {
	db := sqlFixture(t)
	res := db.MustExec(`SELECT title FROM movies WHERE language = 'en' ORDER BY title`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "Alien" || res.Rows[1][0].Str != "Brazil" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[0] != "movies.title" {
		t.Fatalf("header = %v", res.Columns)
	}
}

func TestSelectStar(t *testing.T) {
	db := sqlFixture(t)
	res := db.MustExec(`SELECT * FROM persons ORDER BY id LIMIT 2`)
	if len(res.Rows) != 2 || len(res.Columns) != 2 {
		t.Fatalf("star select = %v / %v", res.Columns, res.Rows)
	}
	if res.Columns[0] != "persons.id" {
		t.Fatalf("headers = %v", res.Columns)
	}
}

func TestSelectJoinChain(t *testing.T) {
	db := sqlFixture(t)
	res := db.MustExec(`
		SELECT movies.title, persons.name
		FROM movies
		JOIN directed_by ON movies.id = directed_by.movie_id
		JOIN persons ON persons.id = directed_by.person_id
		ORDER BY movies.title`)
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "Alien" || res.Rows[0][1].Str != "Ridley Scott" {
		t.Fatalf("join content = %v", res.Rows[0])
	}
}

func TestSelectJoinAliases(t *testing.T) {
	db := sqlFixture(t)
	res := db.MustExec(`
		SELECT m.title AS t, p.name AS director
		FROM movies m
		JOIN directed_by d ON m.id = d.movie_id
		JOIN persons p ON p.id = d.person_id
		WHERE m.language = 'fr'`)
	if len(res.Rows) != 1 || res.Rows[0][1].Str != "Jean-Pierre Jeunet" {
		t.Fatalf("alias join = %v", res.Rows)
	}
	if res.Columns[0] != "t" || res.Columns[1] != "director" {
		t.Fatalf("alias headers = %v", res.Columns)
	}
}

func TestInnerJoinKeywordAndCount(t *testing.T) {
	db := sqlFixture(t)
	res := db.MustExec(`SELECT COUNT(*) FROM movies INNER JOIN directed_by ON movies.id = directed_by.movie_id`)
	if res.Rows[0][0].I != 3 {
		t.Fatalf("count = %v", res.Rows)
	}
}

func TestWherePredicates(t *testing.T) {
	db := sqlFixture(t)
	cases := []struct {
		sql  string
		want int
	}{
		{`SELECT id FROM movies WHERE budget > 10000000`, 2},
		{`SELECT id FROM movies WHERE budget >= 10000000 AND language = 'en'`, 2},
		{`SELECT id FROM movies WHERE language = 'fr' OR title = 'Brazil'`, 2},
		{`SELECT id FROM movies WHERE NOT language = 'en'`, 1},
		{`SELECT id FROM movies WHERE title <> 'Brazil'`, 2},
		{`SELECT id FROM movies WHERE title != 'Brazil'`, 2},
		{`SELECT id FROM movies WHERE budget < 11000000`, 1},
		{`SELECT id FROM movies WHERE budget <= 11000000`, 2},
		{`SELECT id FROM movies WHERE (language = 'en' AND budget > 12000000) OR language = 'fr'`, 2},
		{`SELECT id FROM movies WHERE title LIKE 'A%'`, 2},
		{`SELECT id FROM movies WHERE title LIKE '%li%'`, 2},
		{`SELECT id FROM movies WHERE title LIKE '_razil'`, 1},
		{`SELECT id FROM movies WHERE id = 2`, 1},
	}
	for _, c := range cases {
		res, err := db.Exec(c.sql)
		if err != nil {
			t.Fatalf("%v\n  in: %s", err, c.sql)
		}
		if len(res.Rows) != c.want {
			t.Errorf("%s -> %d rows, want %d", c.sql, len(res.Rows), c.want)
		}
	}
}

func TestWhereIsNull(t *testing.T) {
	db := sqlFixture(t)
	db.MustExec(`INSERT INTO movies (id, title) VALUES (4, 'Mystery')`)
	res := db.MustExec(`SELECT title FROM movies WHERE budget IS NULL`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "Mystery" {
		t.Fatalf("IS NULL = %v", res.Rows)
	}
	res = db.MustExec(`SELECT COUNT(*) FROM movies WHERE budget IS NOT NULL`)
	if res.Rows[0][0].I != 3 {
		t.Fatalf("IS NOT NULL count = %v", res.Rows)
	}
	// NULL comparisons are false, never matching.
	res = db.MustExec(`SELECT COUNT(*) FROM movies WHERE budget = 15000000`)
	if res.Rows[0][0].I != 1 {
		t.Fatalf("NULL-safe compare = %v", res.Rows)
	}
}

func TestDistinctAndLimit(t *testing.T) {
	db := sqlFixture(t)
	res := db.MustExec(`SELECT DISTINCT language FROM movies ORDER BY language`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "en" || res.Rows[1][0].Str != "fr" {
		t.Fatalf("distinct = %v", res.Rows)
	}
	res = db.MustExec(`SELECT id FROM movies ORDER BY id DESC LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 3 {
		t.Fatalf("limit/desc = %v", res.Rows)
	}
	res = db.MustExec(`SELECT id FROM movies LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Fatalf("limit 0 = %v", res.Rows)
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	db := sqlFixture(t)
	db.MustExec(`INSERT INTO movies VALUES (5, 'Brazil', 1, 'pt')`)
	res := db.MustExec(`SELECT title, id FROM movies ORDER BY title ASC, id DESC`)
	if res.Rows[0][0].Str != "Alien" {
		t.Fatalf("order = %v", res.Rows)
	}
	// Two "Brazil" rows: id 5 before id 1 due to DESC second key.
	if res.Rows[2][1].I != 5 || res.Rows[3][1].I != 1 {
		t.Fatalf("secondary order = %v", res.Rows)
	}
}

func TestInsertWithColumnList(t *testing.T) {
	db := sqlFixture(t)
	res := db.MustExec(`INSERT INTO movies (title, id) VALUES ('Valerian', 6)`)
	if res.Rows[0][0].I != 1 {
		t.Fatalf("inserted count = %v", res.Rows)
	}
	row := db.MustTable("movies").Row(3)
	if row[1].Str != "Valerian" || !row[2].IsNull() {
		t.Fatalf("column-list insert = %v", row)
	}
}

func TestSQLStringEscapes(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (s TEXT)`)
	db.MustExec(`INSERT INTO t VALUES ('it''s')`)
	res := db.MustExec(`SELECT s FROM t WHERE s = 'it''s'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "it's" {
		t.Fatalf("escape = %v", res.Rows)
	}
}

func TestSQLNegativeNumbersAndFloats(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INT, b FLOAT)`)
	db.MustExec(`INSERT INTO t VALUES (-5, -2.5), (3, 1e3)`)
	res := db.MustExec(`SELECT a FROM t WHERE b < 0`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != -5 {
		t.Fatalf("negative = %v", res.Rows)
	}
	res = db.MustExec(`SELECT a FROM t WHERE b = 1000.0`)
	if len(res.Rows) != 1 {
		t.Fatalf("scientific literal = %v", res.Rows)
	}
}

func TestSQLErrors(t *testing.T) {
	db := sqlFixture(t)
	bad := []string{
		`SELEC title FROM movies`,
		`SELECT title FROM ghosts`,
		`SELECT ghost FROM movies`,
		`SELECT m.title FROM movies`,
		`SELECT id FROM movies WHERE`,
		`SELECT id FROM movies WHERE title = `,
		`SELECT id FROM movies LIMIT x`,
		`SELECT id FROM movies ORDER id`,
		`INSERT INTO movies VALUES (1)`,
		`INSERT INTO ghosts VALUES (1)`,
		`CREATE TABLE movies (id INT)`,
		`CREATE TABLE x (id WIBBLE)`,
		`SELECT id FROM movies trailing garbage extra`,
		`SELECT id FROM movies WHERE title = 'unterminated`,
		`SELECT id, FROM movies`,
		`SELECT id FROM movies JOIN persons ON movies.id = ghosts.id`,
		`SELECT name FROM persons p JOIN directed_by p ON p.id = p.person_id`,
	}
	for _, s := range bad {
		if _, err := db.Exec(s); err == nil {
			t.Errorf("no error for: %s", s)
		}
	}
}

func TestAmbiguousColumnError(t *testing.T) {
	db := sqlFixture(t)
	// Both movies and persons have an "id" column, so the bare "id" in the
	// second ON clause and in the projection is ambiguous.
	_, err := db.Exec(`
		SELECT id FROM movies
		JOIN directed_by ON movies.id = movie_id
		JOIN persons ON id = person_id`)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("expected ambiguity error, got %v", err)
	}
}

func TestUnqualifiedColumnsResolve(t *testing.T) {
	db := sqlFixture(t)
	res := db.MustExec(`
		SELECT title, name
		FROM movies
		JOIN directed_by ON id = movie_id
		JOIN persons ON persons.id = person_id
		WHERE name = 'Ridley Scott'`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "Alien" {
		t.Fatalf("unqualified resolve = %v", res.Rows)
	}
}

func TestJoinSkipsNullKeys(t *testing.T) {
	db := sqlFixture(t)
	db.MustExec(`INSERT INTO directed_by (person_id) VALUES (10)`) // NULL movie_id
	res := db.MustExec(`SELECT COUNT(*) FROM movies JOIN directed_by ON movies.id = directed_by.movie_id`)
	if res.Rows[0][0].I != 3 {
		t.Fatalf("NULL join key should not match: %v", res.Rows)
	}
}

func TestQueryText(t *testing.T) {
	db := sqlFixture(t)
	titles, err := db.QueryText(`SELECT title FROM movies ORDER BY title`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(titles, "|") != "Alien|Amelie|Brazil" {
		t.Fatalf("QueryText = %v", titles)
	}
	if _, err := db.QueryText(`SELECT nope FROM movies`); err == nil {
		t.Fatal("QueryText should propagate errors")
	}
}

func TestMustExecPanics(t *testing.T) {
	db := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	db.MustExec(`SELECT * FROM missing`)
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "", true},
		{"", "%", true},
		{"abc", "%%", true},
		{"abc", "a%c", true},
		{"abc", "a%b", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestBoolColumnSQL(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (id INT, flag BOOL)`)
	db.MustExec(`INSERT INTO t VALUES (1, TRUE), (2, FALSE)`)
	res := db.MustExec(`SELECT id FROM t WHERE flag`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("bare bool predicate = %v", res.Rows)
	}
	res = db.MustExec(`SELECT id FROM t WHERE flag = FALSE`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 {
		t.Fatalf("bool compare = %v", res.Rows)
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE "Weird" ("Col" TEXT)`)
	db.MustExec(`INSERT INTO "Weird" VALUES ('x')`)
	res := db.MustExec(`SELECT "Col" FROM "Weird"`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "x" {
		t.Fatalf("quoted identifiers = %v", res.Rows)
	}
}
