package reldb

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// CSVOptions controls CSV import.
type CSVOptions struct {
	// Header indicates the first record holds column names (default true
	// via ImportCSV; set explicitly when using ImportCSVInto).
	Header bool
	// PrimaryKey names the column to declare as primary key (optional).
	PrimaryKey string
	// ForeignKeys maps column name -> referenced table (whose PK is used).
	ForeignKeys map[string]string
	// NullLiterals are cell contents treated as NULL in addition to the
	// empty string (e.g. "NA", "\\N").
	NullLiterals []string
	// SampleRows bounds how many records type inference examines
	// (0 = all).
	SampleRows int
}

// ImportCSV reads a CSV stream with a header row, infers column types from
// the data, creates the table and loads all rows. It returns the created
// table.
func (db *DB) ImportCSV(name string, r io.Reader, opts CSVOptions) (*Table, error) {
	opts.Header = true
	return db.importCSV(name, r, opts)
}

func (db *DB) importCSV(name string, r io.Reader, opts CSVOptions) (*Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("reldb: reading CSV for %q: %w", name, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("reldb: empty CSV for %q", name)
	}
	var header []string
	var data [][]string
	if opts.Header {
		header = records[0]
		data = records[1:]
	} else {
		header = make([]string, len(records[0]))
		for i := range header {
			header[i] = fmt.Sprintf("col%d", i)
		}
		data = records
	}
	for i := range header {
		header[i] = strings.ToLower(strings.TrimSpace(header[i]))
	}

	isNull := func(cell string) bool {
		if strings.TrimSpace(cell) == "" {
			return true
		}
		for _, n := range opts.NullLiterals {
			if cell == n {
				return true
			}
		}
		return false
	}

	// Type inference: a column is INT if every non-null sample parses as
	// int, else FLOAT if every non-null sample parses as float, else TEXT.
	kinds := make([]Kind, len(header))
	for ci := range header {
		kind := KindNull
		examined := 0
		for _, rec := range data {
			if opts.SampleRows > 0 && examined >= opts.SampleRows {
				break
			}
			if ci >= len(rec) || isNull(rec[ci]) {
				continue
			}
			examined++
			cell := strings.TrimSpace(rec[ci])
			cellKind := KindText
			if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
				cellKind = KindInt
			} else if _, err := strconv.ParseFloat(cell, 64); err == nil {
				cellKind = KindFloat
			}
			kind = widen(kind, cellKind)
			if kind == KindText {
				break
			}
		}
		if kind == KindNull {
			kind = KindText // all-null column defaults to TEXT
		}
		kinds[ci] = kind
	}

	cols := make([]Column, len(header))
	for i, h := range header {
		cols[i] = Column{Name: h, Type: kinds[i]}
		if opts.PrimaryKey != "" && h == strings.ToLower(opts.PrimaryKey) {
			cols[i].PrimaryKey = true
		}
		if ref, ok := opts.ForeignKeys[h]; !ok {
			continue
		} else {
			refT, found := db.Table(ref)
			if !found {
				return nil, fmt.Errorf("reldb: CSV FK %q references unknown table %q", h, ref)
			}
			pk := refT.PrimaryKeyColumn()
			if pk < 0 {
				return nil, fmt.Errorf("reldb: CSV FK %q: table %q has no primary key", h, ref)
			}
			cols[i].FK = &ForeignKey{Table: ref, Column: refT.Columns[pk].Name}
			// FK columns adopt the referenced key's type.
			cols[i].Type = refT.Columns[pk].Type
		}
	}

	t, err := db.CreateTable(name, cols)
	if err != nil {
		return nil, err
	}
	for ri, rec := range data {
		row := make([]Value, len(cols))
		for ci := range cols {
			if ci >= len(rec) || isNull(rec[ci]) {
				row[ci] = Null
				continue
			}
			cell := strings.TrimSpace(rec[ci])
			switch kinds[ci] {
			case KindInt:
				iv, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("reldb: %s row %d col %s: %w", name, ri+1, cols[ci].Name, err)
				}
				row[ci] = Int(iv)
			case KindFloat:
				fv, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("reldb: %s row %d col %s: %w", name, ri+1, cols[ci].Name, err)
				}
				row[ci] = Float(fv)
			default:
				row[ci] = Text(rec[ci])
			}
		}
		if _, err := db.Insert(name, row); err != nil {
			return nil, fmt.Errorf("reldb: %s row %d: %w", name, ri+1, err)
		}
	}
	return t, nil
}

// widen merges two inferred kinds (NULL is the identity).
func widen(a, b Kind) Kind {
	if a == KindNull {
		return b
	}
	if b == KindNull || a == b {
		return a
	}
	if (a == KindInt && b == KindFloat) || (a == KindFloat && b == KindInt) {
		return KindFloat
	}
	return KindText
}

// ExportCSV writes the table as CSV with a header row.
func (t *Table) ExportCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(t.Columns))
	for _, row := range t.rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
