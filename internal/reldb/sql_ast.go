package reldb

// AST node types for the SQL subset. The parser produces these; the
// executor in sql_exec.go interprets them.

type statement interface{ stmt() }

type createTableStmt struct {
	name string
	cols []Column
}

type insertStmt struct {
	table string
	cols  []string // empty = positional
	rows  [][]exprNode
}

type selectStmt struct {
	distinct bool
	items    []selectItem
	from     tableRef
	joins    []joinClause
	where    exprNode // may be nil
	groupBy  []orderKey
	orderBy  []orderKey
	limit    int // -1 = no limit
}

type selectItem struct {
	star  bool   // bare * (only allowed alone)
	table string // optional qualifier
	col   string
	as    string   // optional alias
	agg   *aggSpec // aggregate function, or nil for a plain column
}

// hasAggregates reports whether any select item is an aggregate.
func (s selectStmt) hasAggregates() bool {
	for _, item := range s.items {
		if item.agg != nil {
			return true
		}
	}
	return false
}

type tableRef struct {
	name  string
	alias string // defaults to name
}

type joinClause struct {
	table tableRef
	// ON leftTable.leftCol = rightTable.rightCol
	leftTable, leftCol   string
	rightTable, rightCol string
}

type orderKey struct {
	table string
	col   string
	desc  bool
}

func (createTableStmt) stmt() {}
func (insertStmt) stmt()      {}
func (selectStmt) stmt()      {}

// Expressions.

type exprNode interface{ expr() }

type litExpr struct{ val Value }

type colExpr struct {
	table string // optional
	col   string
}

type binExpr struct {
	op          string // =, <>, <, <=, >, >=, AND, OR, LIKE
	left, right exprNode
}

type notExpr struct{ inner exprNode }

type isNullExpr struct {
	inner  exprNode
	negate bool
}

func (litExpr) expr()    {}
func (colExpr) expr()    {}
func (binExpr) expr()    {}
func (notExpr) expr()    {}
func (isNullExpr) expr() {}
