package reldb

import (
	"fmt"
	"sort"
	"strings"
)

// Aggregate support: COUNT(*), COUNT(col), SUM/AVG/MIN/MAX(col), with an
// optional GROUP BY over plain column references. The experiment harness
// and examples use these for dataset statistics; the subset matches what
// the evaluation needs rather than full SQL.

type aggKind uint8

const (
	aggCount aggKind = iota
	aggCountCol
	aggSum
	aggAvg
	aggMin
	aggMax
)

func (k aggKind) name() string {
	switch k {
	case aggCount, aggCountCol:
		return "count"
	case aggSum:
		return "sum"
	case aggAvg:
		return "avg"
	case aggMin:
		return "min"
	case aggMax:
		return "max"
	default:
		return "?"
	}
}

type aggSpec struct {
	kind  aggKind
	table string // qualifier of the aggregated column (empty for *)
	col   string
	alias string
}

// aggState accumulates one aggregate over a group.
type aggState struct {
	spec  aggSpec
	count int64
	sum   float64
	min   Value
	max   Value
	any   bool
}

func (s *aggState) add(v Value) {
	switch s.spec.kind {
	case aggCount:
		s.count++
	case aggCountCol:
		if !v.IsNull() {
			s.count++
		}
	case aggSum, aggAvg:
		if f, ok := v.AsFloat(); ok {
			s.sum += f
			s.count++
		}
	case aggMin:
		if v.IsNull() {
			return
		}
		if !s.any || Compare(v, s.min) < 0 {
			s.min = v
			s.any = true
		}
	case aggMax:
		if v.IsNull() {
			return
		}
		if !s.any || Compare(v, s.max) > 0 {
			s.max = v
			s.any = true
		}
	}
}

func (s *aggState) result() Value {
	switch s.spec.kind {
	case aggCount, aggCountCol:
		return Int(s.count)
	case aggSum:
		return Float(s.sum)
	case aggAvg:
		if s.count == 0 {
			return Null
		}
		return Float(s.sum / float64(s.count))
	case aggMin:
		if !s.any {
			return Null
		}
		return s.min
	case aggMax:
		if !s.any {
			return Null
		}
		return s.max
	default:
		return Null
	}
}

// execAggregate evaluates an aggregate SELECT over pre-filtered joined
// rows. groupCols are resolved GROUP BY keys (may be empty for a global
// aggregate); selected items are either group keys or aggregates.
func execAggregate(env *execEnv, rows [][]Value, st selectStmt) (*Result, error) {
	groupKeys := make([]boundCol, len(st.groupBy))
	for i, g := range st.groupBy {
		bc, err := env.resolve(g.table, g.col)
		if err != nil {
			return nil, err
		}
		groupKeys[i] = bc
	}
	// Validate selection: every non-aggregate item must be a group key.
	type outCol struct {
		isAgg  bool
		aggIdx int
		keyIdx int
		header string
	}
	var outCols []outCol
	var specs []aggSpec
	for _, item := range st.items {
		if item.agg != nil {
			spec := *item.agg
			if item.as != "" {
				spec.alias = item.as
			}
			outCols = append(outCols, outCol{isAgg: true, aggIdx: len(specs), header: aggHeader(spec)})
			specs = append(specs, spec)
			continue
		}
		if item.star {
			return nil, fmt.Errorf("reldb: * not allowed alongside aggregates")
		}
		bc, err := env.resolve(item.table, item.col)
		if err != nil {
			return nil, err
		}
		keyIdx := -1
		for gi, g := range groupKeys {
			if g.offset == bc.offset && g.index == bc.index {
				keyIdx = gi
			}
		}
		if keyIdx < 0 {
			return nil, fmt.Errorf("reldb: column %s must appear in GROUP BY", bc.name)
		}
		header := bc.name
		if item.as != "" {
			header = item.as
		}
		outCols = append(outCols, outCol{keyIdx: keyIdx, header: header})
	}

	// Resolve aggregate input columns once.
	aggInputs := make([]boundCol, len(specs))
	for i, spec := range specs {
		if spec.kind == aggCount {
			continue
		}
		bc, err := env.resolve(spec.table, spec.col)
		if err != nil {
			return nil, err
		}
		aggInputs[i] = bc
	}

	type group struct {
		keys   []Value
		states []*aggState
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range rows {
		keyVals := make([]Value, len(groupKeys))
		for i, g := range groupKeys {
			keyVals[i] = row[g.offset+g.index]
		}
		key := projKey(keyVals)
		grp, ok := groups[key]
		if !ok {
			grp = &group{keys: keyVals}
			for _, spec := range specs {
				grp.states = append(grp.states, &aggState{spec: spec})
			}
			groups[key] = grp
			order = append(order, key)
		}
		for i, stt := range grp.states {
			if specs[i].kind == aggCount {
				stt.add(Null)
			} else {
				stt.add(row[aggInputs[i].offset+aggInputs[i].index])
			}
		}
	}
	// Global aggregate over zero rows still yields one row of zeros/NULLs.
	if len(groupKeys) == 0 && len(groups) == 0 {
		grp := &group{}
		for _, spec := range specs {
			grp.states = append(grp.states, &aggState{spec: spec})
		}
		groups["_"] = grp
		order = append(order, "_")
	}
	sort.Strings(order) // deterministic output

	res := &Result{}
	for _, oc := range outCols {
		res.Columns = append(res.Columns, oc.header)
	}
	for _, key := range order {
		grp := groups[key]
		row := make([]Value, len(outCols))
		for i, oc := range outCols {
			if oc.isAgg {
				row[i] = grp.states[oc.aggIdx].result()
			} else {
				row[i] = grp.keys[oc.keyIdx]
			}
		}
		res.Rows = append(res.Rows, row)
	}
	if st.limit >= 0 && len(res.Rows) > st.limit {
		res.Rows = res.Rows[:st.limit]
	}
	return res, nil
}

func aggHeader(s aggSpec) string {
	if s.alias != "" {
		return s.alias
	}
	if s.kind == aggCount {
		return "count"
	}
	qual := s.col
	if s.table != "" {
		qual = s.table + "." + s.col
	}
	return s.kind.name() + "(" + qual + ")"
}

func parseAggName(word string) (aggKind, bool) {
	switch strings.ToUpper(word) {
	case "COUNT":
		return aggCountCol, true
	case "SUM":
		return aggSum, true
	case "AVG":
		return aggAvg, true
	case "MIN":
		return aggMin, true
	case "MAX":
		return aggMax, true
	default:
		return 0, false
	}
}
