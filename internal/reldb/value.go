// Package reldb is a small embedded relational database engine. It stands
// in for the PostgreSQL instance the paper runs RETRO against: it provides
// typed tables with primary/foreign key constraints, CSV import, link-table
// (n:m) detection, and a SQL subset — everything RETRO's relationship
// extraction (§3.2) and the evaluation workloads need.
package reldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates value types.
type Kind uint8

const (
	KindNull Kind = iota
	KindText
	KindInt
	KindFloat
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindText:
		return "TEXT"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a typed database value. It is a comparable struct so it can be
// used directly as a map key for primary key indexes.
type Value struct {
	Kind Kind
	Str  string
	Num  float64 // used by KindFloat; KindBool stores 0/1
	I    int64   // used by KindInt
}

// Null is the SQL NULL value.
var Null = Value{Kind: KindNull}

// Text builds a text value.
func Text(s string) Value { return Value{Kind: KindText, Str: s} }

// Int builds an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float builds a floating-point value.
func Float(f float64) Value { return Value{Kind: KindFloat, Num: f} }

// Bool builds a boolean value.
func Bool(b bool) Value {
	if b {
		return Value{Kind: KindBool, Num: 1}
	}
	return Value{Kind: KindBool}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsFloat returns the numeric interpretation of v (ints are widened).
// The second return is false for non-numeric values.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.Num, true
	case KindBool:
		return v.Num, true
	default:
		return 0, false
	}
}

// AsText returns the textual content for text values.
func (v Value) AsText() (string, bool) {
	if v.Kind == KindText {
		return v.Str, true
	}
	return "", false
}

// String renders the value the way the SQL layer prints it.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "NULL"
	case KindText:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	case KindBool:
		if v.Num != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// Compare orders two values: NULL < everything, numbers by value (ints and
// floats compare cross-kind), text lexicographically, bools false<true.
// Comparing text against numbers orders by kind (numbers first) so sorting
// mixed columns is total and deterministic. Returns -1, 0, or 1.
func Compare(a, b Value) int {
	if a.Kind == KindNull || b.Kind == KindNull {
		switch {
		case a.Kind == b.Kind:
			return 0
		case a.Kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	if aNum && bNum {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if aNum != bNum {
		if aNum {
			return -1
		}
		return 1
	}
	return strings.Compare(a.Str, b.Str)
}

// Equal reports SQL equality (NULL equals nothing, not even NULL; use
// IsNull for NULL tests).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	return Compare(a, b) == 0
}

// Coerce converts v to the column type t where a lossless or conventional
// conversion exists (int→float, numeric text→number, anything→text for
// TEXT columns). It returns an error when no sensible conversion exists.
func Coerce(v Value, t Kind) (Value, error) {
	if v.IsNull() || v.Kind == t {
		return v, nil
	}
	switch t {
	case KindFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f), nil
		}
		if v.Kind == KindText {
			if f, err := strconv.ParseFloat(strings.TrimSpace(v.Str), 64); err == nil {
				return Float(f), nil
			}
		}
	case KindInt:
		switch v.Kind {
		case KindFloat:
			if v.Num == float64(int64(v.Num)) {
				return Int(int64(v.Num)), nil
			}
		case KindText:
			if i, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64); err == nil {
				return Int(i), nil
			}
		}
	case KindText:
		return Text(v.String()), nil
	case KindBool:
		if v.Kind == KindText {
			switch strings.ToLower(strings.TrimSpace(v.Str)) {
			case "true", "t", "1", "yes":
				return Bool(true), nil
			case "false", "f", "0", "no":
				return Bool(false), nil
			}
		}
	}
	return Null, fmt.Errorf("reldb: cannot coerce %s %q to %s", v.Kind, v.String(), t)
}
