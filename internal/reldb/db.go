package reldb

import (
	"fmt"
	"sort"
	"strings"
)

// ForeignKey declares that a column references another table's primary key
// (single-column keys only, which is all the paper's schemas use).
type ForeignKey struct {
	Table  string // referenced table
	Column string // referenced column (must be its primary key)
}

// Column describes one table column.
type Column struct {
	Name       string
	Type       Kind
	PrimaryKey bool
	NotNull    bool
	FK         *ForeignKey
}

// Table is a heap of typed rows plus constraint metadata.
type Table struct {
	Name     string
	Columns  []Column
	colIndex map[string]int
	pkCol    int // index of the primary key column, or -1
	rows     [][]Value
	pkIndex  map[Value]int // pk value -> row index
}

// DB is the database catalog. The zero value is unusable; create with New.
type DB struct {
	tables map[string]*Table
	order  []string // creation order, for deterministic iteration
}

// New creates an empty database.
func New() *DB {
	return &DB{tables: make(map[string]*Table)}
}

// CreateTable registers a new table. Column names must be unique within
// the table, at most one column may be the primary key, and foreign keys
// must reference existing tables' primary keys.
func (db *DB) CreateTable(name string, cols []Column) (*Table, error) {
	name = strings.ToLower(name)
	if name == "" {
		return nil, fmt.Errorf("reldb: empty table name")
	}
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("reldb: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("reldb: table %q needs at least one column", name)
	}
	t := &Table{
		Name:     name,
		colIndex: make(map[string]int, len(cols)),
		pkCol:    -1,
	}
	for i, c := range cols {
		c.Name = strings.ToLower(c.Name)
		if c.Name == "" {
			return nil, fmt.Errorf("reldb: table %q: empty column name", name)
		}
		if _, dup := t.colIndex[c.Name]; dup {
			return nil, fmt.Errorf("reldb: table %q: duplicate column %q", name, c.Name)
		}
		if c.PrimaryKey {
			if t.pkCol >= 0 {
				return nil, fmt.Errorf("reldb: table %q: multiple primary keys", name)
			}
			t.pkCol = i
			c.NotNull = true
		}
		if c.FK != nil {
			fk := *c.FK
			fk.Table = strings.ToLower(fk.Table)
			fk.Column = strings.ToLower(fk.Column)
			ref, ok := db.tables[fk.Table]
			if !ok {
				return nil, fmt.Errorf("reldb: table %q: FK %s references unknown table %q", name, c.Name, fk.Table)
			}
			if ref.pkCol < 0 || ref.Columns[ref.pkCol].Name != fk.Column {
				return nil, fmt.Errorf("reldb: table %q: FK %s must reference the primary key of %q", name, c.Name, fk.Table)
			}
			c.FK = &fk
		}
		t.colIndex[c.Name] = i
		t.Columns = append(t.Columns, c)
	}
	if t.pkCol >= 0 {
		t.pkIndex = make(map[Value]int)
	}
	db.tables[name] = t
	db.order = append(db.order, name)
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// MustTable returns the named table or panics; for test and example code.
func (db *DB) MustTable(name string) *Table {
	t, ok := db.Table(name)
	if !ok {
		panic(fmt.Sprintf("reldb: no table %q", name))
	}
	return t
}

// Tables lists tables in creation order.
func (db *DB) Tables() []*Table {
	out := make([]*Table, 0, len(db.order))
	for _, n := range db.order {
		out = append(out, db.tables[n])
	}
	return out
}

// NumTables returns the number of tables.
func (db *DB) NumTables() int { return len(db.order) }

// ColumnIndex returns the index of the named column.
func (t *Table) ColumnIndex(name string) (int, bool) {
	i, ok := t.colIndex[strings.ToLower(name)]
	return i, ok
}

// PrimaryKeyColumn returns the index of the PK column, or -1.
func (t *Table) PrimaryKeyColumn() int { return t.pkCol }

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns row i. Callers must not mutate it.
func (t *Table) Row(i int) []Value { return t.rows[i] }

// Scan calls fn for every row in insertion order until fn returns false.
// The row slice must not be retained or mutated.
func (t *Table) Scan(fn func(rowID int, row []Value) bool) {
	for i, r := range t.rows {
		if !fn(i, r) {
			return
		}
	}
}

// Insert validates and appends a row given in column order. It enforces
// types (with coercion), NOT NULL, primary key uniqueness, and foreign key
// existence against the current database state. It returns the row id.
func (db *DB) Insert(table string, row []Value) (int, error) {
	t, ok := db.Table(table)
	if !ok {
		return 0, fmt.Errorf("reldb: insert into unknown table %q", table)
	}
	if len(row) != len(t.Columns) {
		return 0, fmt.Errorf("reldb: insert into %q: %d values for %d columns", t.Name, len(row), len(t.Columns))
	}
	checked := make([]Value, len(row))
	for i, v := range row {
		col := t.Columns[i]
		cv, err := Coerce(v, col.Type)
		if err != nil {
			return 0, fmt.Errorf("reldb: insert into %q column %q: %w", t.Name, col.Name, err)
		}
		if cv.IsNull() && col.NotNull {
			return 0, fmt.Errorf("reldb: insert into %q: column %q is NOT NULL", t.Name, col.Name)
		}
		if !cv.IsNull() && col.FK != nil {
			ref := db.tables[col.FK.Table]
			refV, err := Coerce(cv, ref.Columns[ref.pkCol].Type)
			if err != nil {
				return 0, fmt.Errorf("reldb: insert into %q: FK %q: %w", t.Name, col.Name, err)
			}
			if _, exists := ref.pkIndex[refV]; !exists {
				return 0, fmt.Errorf("reldb: insert into %q: FK %q: no %s.%s = %s",
					t.Name, col.Name, col.FK.Table, col.FK.Column, refV.String())
			}
			cv = refV
		}
		checked[i] = cv
	}
	if t.pkCol >= 0 {
		pk := checked[t.pkCol]
		if _, dup := t.pkIndex[pk]; dup {
			return 0, fmt.Errorf("reldb: insert into %q: duplicate primary key %s", t.Name, pk.String())
		}
		t.pkIndex[pk] = len(t.rows)
	}
	t.rows = append(t.rows, checked)
	return len(t.rows) - 1, nil
}

// InsertMap inserts a row given as a column-name map; missing columns are
// NULL.
func (db *DB) InsertMap(table string, values map[string]Value) (int, error) {
	t, ok := db.Table(table)
	if !ok {
		return 0, fmt.Errorf("reldb: insert into unknown table %q", table)
	}
	row := make([]Value, len(t.Columns))
	for i := range row {
		row[i] = Null
	}
	for name, v := range values {
		i, ok := t.ColumnIndex(name)
		if !ok {
			return 0, fmt.Errorf("reldb: insert into %q: unknown column %q", t.Name, name)
		}
		row[i] = v
	}
	return db.Insert(table, row)
}

// LookupPK returns the row id holding the given primary key value.
func (t *Table) LookupPK(pk Value) (int, bool) {
	if t.pkIndex == nil {
		return 0, false
	}
	id, ok := t.pkIndex[pk]
	return id, ok
}

// TextColumns returns the indices of TEXT columns that are neither the
// primary key nor a foreign key — the columns whose values RETRO embeds.
func (t *Table) TextColumns() []int {
	var out []int
	for i, c := range t.Columns {
		if c.Type == KindText && !c.PrimaryKey && c.FK == nil {
			out = append(out, i)
		}
	}
	return out
}

// ForeignKeyColumns returns the indices of FK columns.
func (t *Table) ForeignKeyColumns() []int {
	var out []int
	for i, c := range t.Columns {
		if c.FK != nil {
			out = append(out, i)
		}
	}
	return out
}

// IsLinkTable reports whether t is a pure n:m link table: exactly two FK
// columns and no data columns besides an optional surrogate primary key.
func (t *Table) IsLinkTable() bool {
	fks := 0
	other := 0
	for i, c := range t.Columns {
		switch {
		case c.FK != nil:
			fks++
		case i == t.pkCol:
			// surrogate key is fine
		default:
			other++
		}
	}
	return fks == 2 && other == 0
}

// LinkTables returns all pure n:m link tables.
func (db *DB) LinkTables() []*Table {
	var out []*Table
	for _, t := range db.Tables() {
		if t.IsLinkTable() {
			out = append(out, t)
		}
	}
	return out
}

// DistinctText returns the distinct non-null text values in the given
// column, sorted for determinism.
func (t *Table) DistinctText(col int) []string {
	seen := make(map[string]bool)
	for _, r := range t.rows {
		if s, ok := r[col].AsText(); ok {
			seen[s] = true
		}
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// String summarises the schema, one table per line.
func (db *DB) String() string {
	var b strings.Builder
	for _, t := range db.Tables() {
		fmt.Fprintf(&b, "%s(", t.Name)
		for i, c := range t.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s %s", c.Name, c.Type)
			if c.PrimaryKey {
				b.WriteString(" PK")
			}
			if c.FK != nil {
				fmt.Fprintf(&b, " -> %s.%s", c.FK.Table, c.FK.Column)
			}
		}
		fmt.Fprintf(&b, ") [%d rows]\n", len(t.rows))
	}
	return b.String()
}
