package reldb

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates SQL token classes.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokPunct
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased, idents lower-cased, punct literal
	pos  int    // byte offset, for error messages
}

var sqlKeywords = map[string]bool{
	"CREATE": true, "TABLE": true, "PRIMARY": true, "KEY": true,
	"NOT": true, "NULL": true, "REFERENCES": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"SELECT": true, "DISTINCT": true, "FROM": true, "JOIN": true,
	"INNER": true, "ON": true, "WHERE": true, "AND": true, "OR": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "LIMIT": true,
	"GROUP": true, "IS": true, "COUNT": true, "AS": true, "LIKE": true,
	"TRUE": true, "FALSE": true,
}

// lexSQL splits a statement into tokens. Strings use single quotes with
// ” as the escape, following SQL convention.
func lexSQL(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("reldb: unterminated string at offset %d", start)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(input[i])
				i++
			}
			toks = append(toks, token{tokString, b.String(), start})
		case unicode.IsDigit(c) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1])) && expectsValue(toks)):
			start := i
			if c == '-' {
				i++
			}
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
				((input[i] == '+' || input[i] == '-') && (input[i-1] == 'e' || input[i-1] == 'E'))) {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if sqlKeywords[upper] {
				toks = append(toks, token{tokKeyword, upper, start})
			} else {
				toks = append(toks, token{tokIdent, strings.ToLower(word), start})
			}
		case c == '"':
			// Quoted identifier.
			start := i
			i++
			j := strings.IndexByte(input[i:], '"')
			if j < 0 {
				return nil, fmt.Errorf("reldb: unterminated quoted identifier at offset %d", start)
			}
			toks = append(toks, token{tokIdent, strings.ToLower(input[i : i+j]), start})
			i += j + 1
		default:
			start := i
			switch c {
			case '<':
				if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
					toks = append(toks, token{tokPunct, input[i : i+2], start})
					i += 2
					continue
				}
			case '>', '!':
				if i+1 < n && input[i+1] == '=' {
					toks = append(toks, token{tokPunct, input[i : i+2], start})
					i += 2
					continue
				}
				if c == '!' {
					return nil, fmt.Errorf("reldb: stray '!' at offset %d", start)
				}
			}
			switch c {
			case '(', ')', ',', '.', '*', '=', '<', '>', ';':
				toks = append(toks, token{tokPunct, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("reldb: unexpected character %q at offset %d", c, start)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

// expectsValue reports whether a '-' at the current position should start
// a negative number literal (after an operator/keyword/comma/paren) rather
// than being arithmetic (which this subset does not support anyway).
func expectsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	switch last.kind {
	case tokPunct:
		return last.text != ")"
	case tokKeyword:
		return true
	default:
		return false
	}
}
