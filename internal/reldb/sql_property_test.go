package reldb

import (
	"fmt"
	"math/rand"
	"testing"
)

// Differential testing: random WHERE predicates are executed by the SQL
// engine and replayed by a straight-line Go reference evaluator over the
// same rows; results must agree row for row.

type propRow struct {
	id     int64
	name   string
	score  float64
	weight int64
	flag   bool
	isNull bool // score is NULL
}

func propFixture(t *testing.T, rng *rand.Rand, n int) (*DB, []propRow) {
	t.Helper()
	db := New()
	db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score FLOAT, weight INT, flag BOOL)`)
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	rows := make([]propRow, n)
	for i := 0; i < n; i++ {
		r := propRow{
			id:     int64(i),
			name:   names[rng.Intn(len(names))],
			score:  float64(rng.Intn(100)) / 10,
			weight: int64(rng.Intn(20)),
			flag:   rng.Intn(2) == 0,
			isNull: rng.Intn(6) == 0,
		}
		rows[i] = r
		score := Float(r.score)
		if r.isNull {
			score = Null
		}
		if _, err := db.Insert("t", []Value{Int(r.id), Text(r.name), score, Int(r.weight), Bool(r.flag)}); err != nil {
			t.Fatal(err)
		}
	}
	return db, rows
}

// predicate is a randomly generated condition with both a SQL rendering
// and a reference Go evaluation.
type predicate struct {
	sql  string
	eval func(r propRow) bool
}

func randPredicate(rng *rand.Rand, depth int) predicate {
	if depth > 0 && rng.Intn(3) == 0 {
		left := randPredicate(rng, depth-1)
		right := randPredicate(rng, depth-1)
		if rng.Intn(2) == 0 {
			return predicate{
				sql:  "(" + left.sql + " AND " + right.sql + ")",
				eval: func(r propRow) bool { return left.eval(r) && right.eval(r) },
			}
		}
		return predicate{
			sql:  "(" + left.sql + " OR " + right.sql + ")",
			eval: func(r propRow) bool { return left.eval(r) || right.eval(r) },
		}
	}
	switch rng.Intn(6) {
	case 0: // numeric comparison on weight
		v := int64(rng.Intn(20))
		op := []string{"<", "<=", ">", ">=", "=", "<>"}[rng.Intn(6)]
		return predicate{
			sql: fmt.Sprintf("weight %s %d", op, v),
			eval: func(r propRow) bool {
				switch op {
				case "<":
					return r.weight < v
				case "<=":
					return r.weight <= v
				case ">":
					return r.weight > v
				case ">=":
					return r.weight >= v
				case "=":
					return r.weight == v
				default:
					return r.weight != v
				}
			},
		}
	case 1: // float comparison on score (NULL compares false)
		v := float64(rng.Intn(100)) / 10
		op := []string{"<", ">", "<=", ">="}[rng.Intn(4)]
		return predicate{
			sql: fmt.Sprintf("score %s %g", op, v),
			eval: func(r propRow) bool {
				if r.isNull {
					return false
				}
				switch op {
				case "<":
					return r.score < v
				case ">":
					return r.score > v
				case "<=":
					return r.score <= v
				default:
					return r.score >= v
				}
			},
		}
	case 2: // name equality
		names := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
		v := names[rng.Intn(len(names))]
		if rng.Intn(2) == 0 {
			return predicate{
				sql:  fmt.Sprintf("name = '%s'", v),
				eval: func(r propRow) bool { return r.name == v },
			}
		}
		return predicate{
			sql:  fmt.Sprintf("name <> '%s'", v),
			eval: func(r propRow) bool { return r.name != v },
		}
	case 3: // NULL tests
		if rng.Intn(2) == 0 {
			return predicate{sql: "score IS NULL", eval: func(r propRow) bool { return r.isNull }}
		}
		return predicate{sql: "score IS NOT NULL", eval: func(r propRow) bool { return !r.isNull }}
	case 4: // boolean column
		if rng.Intn(2) == 0 {
			return predicate{sql: "flag", eval: func(r propRow) bool { return r.flag }}
		}
		return predicate{sql: "NOT flag", eval: func(r propRow) bool { return !r.flag }}
	default: // LIKE on name
		pat := []string{"a%", "%a", "%et%", "_eta", "%"}[rng.Intn(5)]
		return predicate{
			sql:  fmt.Sprintf("name LIKE '%s'", pat),
			eval: func(r propRow) bool { return likeMatch(r.name, pat) },
		}
	}
}

func TestPropertySQLWhereMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db, rows := propFixture(t, rng, 120)
	for trial := 0; trial < 200; trial++ {
		pred := randPredicate(rng, 2)
		sql := "SELECT id FROM t WHERE " + pred.sql + " ORDER BY id"
		res, err := db.Exec(sql)
		if err != nil {
			t.Fatalf("trial %d: %v\n  in: %s", trial, err, sql)
		}
		var want []int64
		for _, r := range rows {
			if pred.eval(r) {
				want = append(want, r.id)
			}
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("trial %d: %d rows, reference %d\n  in: %s", trial, len(res.Rows), len(want), sql)
		}
		for i, w := range want {
			if res.Rows[i][0].I != w {
				t.Fatalf("trial %d row %d: id %d, reference %d\n  in: %s", trial, i, res.Rows[i][0].I, w, sql)
			}
		}
	}
}

func TestPropertySQLAggregatesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	db, rows := propFixture(t, rng, 100)
	for trial := 0; trial < 60; trial++ {
		pred := randPredicate(rng, 1)
		sql := "SELECT COUNT(*), SUM(weight), COUNT(score) FROM t WHERE " + pred.sql
		res, err := db.Exec(sql)
		if err != nil {
			t.Fatalf("trial %d: %v\n  in: %s", trial, err, sql)
		}
		var count, countScore int64
		var sum float64
		for _, r := range rows {
			if !pred.eval(r) {
				continue
			}
			count++
			sum += float64(r.weight)
			if !r.isNull {
				countScore++
			}
		}
		got := res.Rows[0]
		if got[0].I != count || got[1].Num != sum || got[2].I != countScore {
			t.Fatalf("trial %d: got %v want [%d %g %d]\n  in: %s", trial, got, count, sum, countScore, sql)
		}
	}
}

func TestPropertyGroupByMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	db, rows := propFixture(t, rng, 150)
	res := db.MustExec(`SELECT name, COUNT(*), AVG(score) FROM t GROUP BY name`)
	wantCount := map[string]int64{}
	wantSum := map[string]float64{}
	wantN := map[string]int64{}
	for _, r := range rows {
		wantCount[r.name]++
		if !r.isNull {
			wantSum[r.name] += r.score
			wantN[r.name]++
		}
	}
	if len(res.Rows) != len(wantCount) {
		t.Fatalf("groups = %d want %d", len(res.Rows), len(wantCount))
	}
	for _, row := range res.Rows {
		name := row[0].Str
		if row[1].I != wantCount[name] {
			t.Fatalf("%s: count %d want %d", name, row[1].I, wantCount[name])
		}
		if wantN[name] == 0 {
			if !row[2].IsNull() {
				t.Fatalf("%s: avg should be NULL", name)
			}
			continue
		}
		want := wantSum[name] / float64(wantN[name])
		if diff := row[2].Num - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s: avg %v want %v", name, row[2].Num, want)
		}
	}
}
