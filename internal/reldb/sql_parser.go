package reldb

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a hand-written recursive-descent parser over the token stream.
type parser struct {
	toks []token
	pos  int
}

func parseSQL(input string) (statement, error) {
	toks, err := lexSQL(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var st statement
	switch {
	case p.acceptKeyword("CREATE"):
		st, err = p.parseCreateTable()
	case p.acceptKeyword("INSERT"):
		st, err = p.parseInsert()
	case p.acceptKeyword("SELECT"):
		st, err = p.parseSelect()
	default:
		return nil, fmt.Errorf("reldb: expected CREATE, INSERT or SELECT, got %q", p.peek().text)
	}
	if err != nil {
		return nil, err
	}
	p.acceptPunct(";")
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("reldb: trailing input starting at %q", p.peek().text)
	}
	return st, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("reldb: expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptPunct(s string) bool {
	if t := p.peek(); t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("reldb: expected %q, got %q", s, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("reldb: expected identifier, got %q", t.text)
	}
	p.pos++
	return t.text, nil
}

// CREATE TABLE name (col TYPE [PRIMARY KEY] [NOT NULL] [REFERENCES t(c)], ...)
func (p *parser) parseCreateTable() (statement, error) {
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		colName, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typeName, err := p.expectIdent()
		if err != nil {
			return nil, fmt.Errorf("reldb: column %q: %w", colName, err)
		}
		kind, err := parseTypeName(typeName)
		if err != nil {
			return nil, err
		}
		col := Column{Name: colName, Type: kind}
		for {
			switch {
			case p.acceptKeyword("PRIMARY"):
				if err := p.expectKeyword("KEY"); err != nil {
					return nil, err
				}
				col.PrimaryKey = true
			case p.acceptKeyword("NOT"):
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				col.NotNull = true
			case p.acceptKeyword("REFERENCES"):
				refTable, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct("("); err != nil {
					return nil, err
				}
				refCol, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				col.FK = &ForeignKey{Table: refTable, Column: refCol}
			default:
				goto doneConstraints
			}
		}
	doneConstraints:
		cols = append(cols, col)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return createTableStmt{name: name, cols: cols}, nil
}

func parseTypeName(name string) (Kind, error) {
	switch strings.ToLower(name) {
	case "text", "varchar", "string", "char":
		return KindText, nil
	case "int", "integer", "bigint", "smallint":
		return KindInt, nil
	case "float", "real", "double", "numeric", "decimal":
		return KindFloat, nil
	case "bool", "boolean":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("reldb: unknown type %q", name)
	}
}

// INSERT INTO name [(cols)] VALUES (...), (...)
func (p *parser) parseInsert() (statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.acceptPunct("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	var rows [][]exprNode
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []exprNode
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		rows = append(rows, row)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	return insertStmt{table: table, cols: cols, rows: rows}, nil
}

// SELECT [DISTINCT] list FROM t [alias] [JOIN t2 [alias] ON a.b = c.d]*
// [WHERE expr] [ORDER BY ref [ASC|DESC], ...] [LIMIT n]
func (p *parser) parseSelect() (statement, error) {
	st := selectStmt{limit: -1}
	st.distinct = p.acceptKeyword("DISTINCT")

	if p.acceptPunct("*") {
		st.items = []selectItem{{star: true}}
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			st.items = append(st.items, item)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}

	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	st.from = from

	for {
		if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		jt, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		lt, lc, err := p.parseQualifiedCol()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		rt, rc, err := p.parseQualifiedCol()
		if err != nil {
			return nil, err
		}
		st.joins = append(st.joins, joinClause{
			table:     jt,
			leftTable: lt, leftCol: lc,
			rightTable: rt, rightCol: rc,
		})
	}

	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			tbl, col, err := p.parseQualifiedCol()
			if err != nil {
				return nil, err
			}
			st.groupBy = append(st.groupBy, orderKey{table: tbl, col: col})
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			tbl, col, err := p.parseQualifiedCol()
			if err != nil {
				return nil, err
			}
			key := orderKey{table: tbl, col: col}
			if p.acceptKeyword("DESC") {
				key.desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.orderBy = append(st.orderBy, key)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("reldb: LIMIT expects a number, got %q", t.text)
		}
		nVal, err := strconv.Atoi(t.text)
		if err != nil || nVal < 0 {
			return nil, fmt.Errorf("reldb: bad LIMIT %q", t.text)
		}
		st.limit = nVal
	}
	return st, nil
}

func (p *parser) parseSelectItem() (selectItem, error) {
	// Aggregates: COUNT(*) / COUNT(col) (keyword) or SUM/AVG/MIN/MAX(col)
	// (contextual: an identifier immediately followed by a parenthesis).
	if p.acceptKeyword("COUNT") {
		spec, err := p.parseAggArgs(aggCountCol)
		if err != nil {
			return selectItem{}, err
		}
		return p.withAlias(selectItem{agg: spec})
	}
	if t := p.peek(); t.kind == tokIdent {
		if kind, ok := parseAggName(t.text); ok && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
			p.pos++
			spec, err := p.parseAggArgs(kind)
			if err != nil {
				return selectItem{}, err
			}
			return p.withAlias(selectItem{agg: spec})
		}
	}
	tbl, col, err := p.parseQualifiedCol()
	if err != nil {
		return selectItem{}, err
	}
	return p.withAlias(selectItem{table: tbl, col: col})
}

func (p *parser) withAlias(item selectItem) (selectItem, error) {
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return selectItem{}, err
		}
		item.as = alias
	}
	return item, nil
}

// parseAggArgs parses "( * )" or "( [table.]col )" after an aggregate
// name. kind is the column form; COUNT(*) maps to aggCount.
func (p *parser) parseAggArgs(kind aggKind) (*aggSpec, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if p.acceptPunct("*") {
		if kind != aggCountCol {
			return nil, fmt.Errorf("reldb: only COUNT accepts *")
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &aggSpec{kind: aggCount}, nil
	}
	tbl, col, err := p.parseQualifiedCol()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &aggSpec{kind: kind, table: tbl, col: col}, nil
}

func (p *parser) parseTableRef() (tableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return tableRef{}, err
	}
	ref := tableRef{name: name, alias: name}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return tableRef{}, err
		}
		ref.alias = alias
	} else if p.peek().kind == tokIdent {
		ref.alias = p.next().text
	}
	return ref, nil
}

// parseQualifiedCol parses col or table.col.
func (p *parser) parseQualifiedCol() (table, col string, err error) {
	first, err := p.expectIdent()
	if err != nil {
		return "", "", err
	}
	if p.acceptPunct(".") {
		second, err := p.expectIdent()
		if err != nil {
			return "", "", err
		}
		return first, second, nil
	}
	return "", first, nil
}

// Expression grammar: or_expr := and_expr (OR and_expr)* ;
// and_expr := unary (AND unary)* ; unary := NOT unary | primary ;
// primary := operand [cmp operand] | operand IS [NOT] NULL | ( or_expr )
func (p *parser) parseExpr() (exprNode, error) { return p.parseOr() }

func (p *parser) parseOr() (exprNode, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = binExpr{op: "OR", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (exprNode, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = binExpr{op: "AND", left: left, right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (exprNode, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{inner: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (exprNode, error) {
	if p.acceptPunct("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("IS") {
		negate := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return isNullExpr{inner: left, negate: negate}, nil
	}
	if p.acceptKeyword("LIKE") {
		right, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		return binExpr{op: "LIKE", left: left, right: right}, nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.acceptPunct(op) {
			right, err := p.parseOperand()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return binExpr{op: op, left: left, right: right}, nil
		}
	}
	// Bare operand (only meaningful for booleans); allow it.
	return left, nil
}

func (p *parser) parseOperand() (exprNode, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.pos++
		return litExpr{Text(t.text)}, nil
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("reldb: bad number %q", t.text)
			}
			return litExpr{Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("reldb: bad number %q", t.text)
		}
		return litExpr{Int(i)}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			p.pos++
			return litExpr{Null}, nil
		case "TRUE":
			p.pos++
			return litExpr{Bool(true)}, nil
		case "FALSE":
			p.pos++
			return litExpr{Bool(false)}, nil
		}
		return nil, fmt.Errorf("reldb: unexpected keyword %q in expression", t.text)
	case tokIdent:
		tbl, col, err := p.parseQualifiedCol()
		if err != nil {
			return nil, err
		}
		return colExpr{table: tbl, col: col}, nil
	default:
		return nil, fmt.Errorf("reldb: unexpected token %q in expression", t.text)
	}
}
