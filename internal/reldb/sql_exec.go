package reldb

import (
	"fmt"
	"sort"
	"strings"
)

// Result is the output of a query: column headers plus rows.
type Result struct {
	Columns []string
	Rows    [][]Value
}

// Exec parses and runs one SQL statement. DDL and DML return an empty
// result (INSERT reports the number of rows inserted via RowsAffected-like
// convention: a single row with a single INT).
func (db *DB) Exec(sql string) (*Result, error) {
	st, err := parseSQL(sql)
	if err != nil {
		return nil, err
	}
	switch s := st.(type) {
	case createTableStmt:
		if _, err := db.CreateTable(s.name, s.cols); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case insertStmt:
		return db.execInsert(s)
	case selectStmt:
		return db.execSelect(s)
	default:
		return nil, fmt.Errorf("reldb: unhandled statement %T", st)
	}
}

// MustExec runs a statement and panics on error; for tests and examples.
func (db *DB) MustExec(sql string) *Result {
	res, err := db.Exec(sql)
	if err != nil {
		panic(fmt.Sprintf("reldb: %v\n  in: %s", err, sql))
	}
	return res
}

// QueryText runs a SELECT and flattens the first column to strings,
// a convenience for the extraction and example code.
func (db *DB) QueryText(sql string) ([]string, error) {
	res, err := db.Exec(sql)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		if len(r) == 0 {
			continue
		}
		out = append(out, r[0].String())
	}
	return out, nil
}

func (db *DB) execInsert(s insertStmt) (*Result, error) {
	t, ok := db.Table(s.table)
	if !ok {
		return nil, fmt.Errorf("reldb: insert into unknown table %q", s.table)
	}
	count := 0
	for _, exprRow := range s.rows {
		values := make([]Value, len(exprRow))
		for i, e := range exprRow {
			lit, ok := e.(litExpr)
			if !ok {
				return nil, fmt.Errorf("reldb: INSERT values must be literals")
			}
			values[i] = lit.val
		}
		if len(s.cols) == 0 {
			if _, err := db.Insert(s.table, values); err != nil {
				return nil, err
			}
		} else {
			if len(values) != len(s.cols) {
				return nil, fmt.Errorf("reldb: INSERT %d values for %d columns", len(values), len(s.cols))
			}
			m := make(map[string]Value, len(s.cols))
			for i, c := range s.cols {
				if _, ok := t.ColumnIndex(c); !ok {
					return nil, fmt.Errorf("reldb: insert into %q: unknown column %q", t.Name, c)
				}
				m[c] = values[i]
			}
			if _, err := db.InsertMap(s.table, m); err != nil {
				return nil, err
			}
		}
		count++
	}
	return &Result{Columns: []string{"inserted"}, Rows: [][]Value{{Int(int64(count))}}}, nil
}

// boundCol locates a column in the joined row layout.
type boundCol struct {
	offset int // start of the table's slot in the joined row
	index  int // column index within the table
	name   string
}

// execEnv is the name-resolution environment for a FROM/JOIN chain.
type execEnv struct {
	tables  []*Table
	aliases []string
	offsets []int
	width   int
}

func (db *DB) buildEnv(from tableRef, joins []joinClause) (*execEnv, error) {
	env := &execEnv{}
	add := func(ref tableRef) (*Table, error) {
		t, ok := db.Table(ref.name)
		if !ok {
			return nil, fmt.Errorf("reldb: unknown table %q", ref.name)
		}
		for _, a := range env.aliases {
			if a == ref.alias {
				return nil, fmt.Errorf("reldb: duplicate table alias %q", ref.alias)
			}
		}
		env.tables = append(env.tables, t)
		env.aliases = append(env.aliases, ref.alias)
		env.offsets = append(env.offsets, env.width)
		env.width += len(t.Columns)
		return t, nil
	}
	if _, err := add(from); err != nil {
		return nil, err
	}
	for _, j := range joins {
		if _, err := add(j.table); err != nil {
			return nil, err
		}
	}
	return env, nil
}

// resolve finds a (possibly qualified) column in the environment.
func (env *execEnv) resolve(table, col string) (boundCol, error) {
	if table != "" {
		for i, a := range env.aliases {
			if a == table {
				idx, ok := env.tables[i].ColumnIndex(col)
				if !ok {
					return boundCol{}, fmt.Errorf("reldb: table %q has no column %q", table, col)
				}
				return boundCol{offset: env.offsets[i], index: idx, name: a + "." + col}, nil
			}
		}
		return boundCol{}, fmt.Errorf("reldb: unknown table alias %q", table)
	}
	found := -1
	var bc boundCol
	for i := range env.tables {
		if idx, ok := env.tables[i].ColumnIndex(col); ok {
			if found >= 0 {
				return boundCol{}, fmt.Errorf("reldb: ambiguous column %q (in %q and %q)", col, env.aliases[found], env.aliases[i])
			}
			found = i
			bc = boundCol{offset: env.offsets[i], index: idx, name: env.aliases[i] + "." + col}
		}
	}
	if found < 0 {
		return boundCol{}, fmt.Errorf("reldb: unknown column %q", col)
	}
	return bc, nil
}

func (db *DB) execSelect(s selectStmt) (*Result, error) {
	env, err := db.buildEnv(s.from, s.joins)
	if err != nil {
		return nil, err
	}

	// Materialise joined rows with hash joins, left to right.
	rows := make([][]Value, 0, env.tables[0].NumRows())
	env.tables[0].Scan(func(_ int, r []Value) bool {
		joined := make([]Value, env.width)
		copy(joined, r)
		rows = append(rows, joined)
		return true
	})
	for ji, j := range s.joins {
		// Both sides may name any table joined so far, including the new
		// one; the new/old classification happens below.
		leftBC, err := env.resolveWithin(ji+2, j.leftTable, j.leftCol)
		if err != nil {
			return nil, err
		}
		rightBC, err := env.resolveWithin(ji+2, j.rightTable, j.rightCol)
		if err != nil {
			return nil, err
		}
		// Exactly one side must belong to the newly joined table.
		newOffset := env.offsets[ji+1]
		var probe, build boundCol
		switch {
		case leftBC.offset == newOffset && rightBC.offset != newOffset:
			build, probe = leftBC, rightBC
		case rightBC.offset == newOffset && leftBC.offset != newOffset:
			build, probe = rightBC, leftBC
		default:
			return nil, fmt.Errorf("reldb: JOIN %q ON must relate the new table to a previous one", j.table.name)
		}
		newTable := env.tables[ji+1]
		// Build hash index over the new table's join column.
		index := make(map[Value][]int)
		newTable.Scan(func(id int, r []Value) bool {
			v := r[build.index]
			if !v.IsNull() {
				index[v] = append(index[v], id)
			}
			return true
		})
		var next [][]Value
		for _, joined := range rows {
			v := joined[probe.offset+probe.index]
			if v.IsNull() {
				continue
			}
			for _, id := range index[v] {
				out := make([]Value, env.width)
				copy(out, joined)
				copy(out[newOffset:newOffset+len(newTable.Columns)], newTable.Row(id))
				next = append(next, out)
			}
		}
		rows = next
	}

	// WHERE filter.
	if s.where != nil {
		ev, err := compileExpr(env, s.where)
		if err != nil {
			return nil, err
		}
		filtered := rows[:0]
		for _, r := range rows {
			keep, err := ev(r)
			if err != nil {
				return nil, err
			}
			if keep {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}

	if s.hasAggregates() || len(s.groupBy) > 0 {
		if len(s.orderBy) > 0 {
			return nil, fmt.Errorf("reldb: ORDER BY with aggregates is not supported (groups are emitted in deterministic key order)")
		}
		if s.distinct {
			return nil, fmt.Errorf("reldb: DISTINCT with aggregates is not supported")
		}
		return execAggregate(env, rows, s)
	}

	// Projection.
	var cols []boundCol
	var headers []string
	for _, item := range s.items {
		if item.star {
			for i, t := range env.tables {
				for ci, c := range t.Columns {
					cols = append(cols, boundCol{offset: env.offsets[i], index: ci})
					headers = append(headers, env.aliases[i]+"."+c.Name)
				}
			}
			continue
		}
		bc, err := env.resolve(item.table, item.col)
		if err != nil {
			return nil, err
		}
		cols = append(cols, bc)
		if item.as != "" {
			headers = append(headers, item.as)
		} else {
			headers = append(headers, bc.name)
		}
	}

	// ORDER BY before projection (keys may be unprojected).
	if len(s.orderBy) > 0 {
		keys := make([]boundCol, len(s.orderBy))
		for i, k := range s.orderBy {
			bc, err := env.resolve(k.table, k.col)
			if err != nil {
				return nil, err
			}
			keys[i] = bc
		}
		sort.SliceStable(rows, func(a, b int) bool {
			for i, k := range keys {
				cmp := Compare(rows[a][k.offset+k.index], rows[b][k.offset+k.index])
				if cmp == 0 {
					continue
				}
				if s.orderBy[i].desc {
					return cmp > 0
				}
				return cmp < 0
			}
			return false
		})
	}

	out := make([][]Value, 0, len(rows))
	var seen map[string]bool
	if s.distinct {
		seen = make(map[string]bool)
	}
	for _, r := range rows {
		if s.limit >= 0 && len(out) >= s.limit {
			break
		}
		proj := make([]Value, len(cols))
		for i, bc := range cols {
			proj[i] = r[bc.offset+bc.index]
		}
		if s.distinct {
			key := projKey(proj)
			if seen[key] {
				continue
			}
			seen[key] = true
		}
		out = append(out, proj)
	}
	return &Result{Columns: headers, Rows: out}, nil
}

// resolveWithin resolves a column considering only the first n tables of
// the environment (JOIN ON may only reference tables joined so far).
func (env *execEnv) resolveWithin(n int, table, col string) (boundCol, error) {
	sub := &execEnv{
		tables:  env.tables[:n],
		aliases: env.aliases[:n],
		offsets: env.offsets[:n],
		width:   env.width,
	}
	return sub.resolve(table, col)
}

func projKey(vals []Value) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(v.Kind.String())
		b.WriteByte(':')
		b.WriteString(v.String())
		b.WriteByte('\x00')
	}
	return b.String()
}

// compileExpr turns an AST expression into an evaluator over joined rows.
// Three-valued logic is collapsed: NULL comparisons are false.
func compileExpr(env *execEnv, e exprNode) (func(row []Value) (bool, error), error) {
	val, err := compileValue(env, e)
	if err != nil {
		return nil, err
	}
	return func(row []Value) (bool, error) {
		v, err := val(row)
		if err != nil {
			return false, err
		}
		if v.Kind == KindBool {
			return v.Num != 0, nil
		}
		return false, fmt.Errorf("reldb: WHERE expression is not boolean (got %s)", v.Kind)
	}, nil
}

func compileValue(env *execEnv, e exprNode) (func(row []Value) (Value, error), error) {
	switch n := e.(type) {
	case litExpr:
		v := n.val
		return func([]Value) (Value, error) { return v, nil }, nil
	case colExpr:
		bc, err := env.resolve(n.table, n.col)
		if err != nil {
			return nil, err
		}
		return func(row []Value) (Value, error) { return row[bc.offset+bc.index], nil }, nil
	case notExpr:
		inner, err := compileExpr(env, n.inner)
		if err != nil {
			return nil, err
		}
		return func(row []Value) (Value, error) {
			b, err := inner(row)
			if err != nil {
				return Null, err
			}
			return Bool(!b), nil
		}, nil
	case isNullExpr:
		inner, err := compileValue(env, n.inner)
		if err != nil {
			return nil, err
		}
		negate := n.negate
		return func(row []Value) (Value, error) {
			v, err := inner(row)
			if err != nil {
				return Null, err
			}
			return Bool(v.IsNull() != negate), nil
		}, nil
	case binExpr:
		left, err := compileValue(env, n.left)
		if err != nil {
			return nil, err
		}
		right, err := compileValue(env, n.right)
		if err != nil {
			return nil, err
		}
		op := n.op
		return func(row []Value) (Value, error) {
			lv, err := left(row)
			if err != nil {
				return Null, err
			}
			switch op {
			case "AND":
				if lv.Kind == KindBool && lv.Num == 0 {
					return Bool(false), nil
				}
			case "OR":
				if lv.Kind == KindBool && lv.Num != 0 {
					return Bool(true), nil
				}
			}
			rv, err := right(row)
			if err != nil {
				return Null, err
			}
			switch op {
			case "AND", "OR":
				if lv.Kind != KindBool || rv.Kind != KindBool {
					return Null, fmt.Errorf("reldb: %s needs boolean operands", op)
				}
				if op == "AND" {
					return Bool(lv.Num != 0 && rv.Num != 0), nil
				}
				return Bool(lv.Num != 0 || rv.Num != 0), nil
			case "LIKE":
				ls, lok := lv.AsText()
				rs, rok := rv.AsText()
				if !lok || !rok {
					return Bool(false), nil
				}
				return Bool(likeMatch(ls, rs)), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return Bool(false), nil
			}
			cmp := Compare(lv, rv)
			switch op {
			case "=":
				return Bool(cmp == 0), nil
			case "<>":
				return Bool(cmp != 0), nil
			case "<":
				return Bool(cmp < 0), nil
			case "<=":
				return Bool(cmp <= 0), nil
			case ">":
				return Bool(cmp > 0), nil
			case ">=":
				return Bool(cmp >= 0), nil
			default:
				return Null, fmt.Errorf("reldb: unknown operator %q", op)
			}
		}, nil
	default:
		return nil, fmt.Errorf("reldb: unhandled expression %T", e)
	}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one char),
// case-sensitive, by dynamic programming over bytes.
func likeMatch(s, pattern string) bool {
	// match[i] reports whether pattern[:pi] matches s[:i].
	prev := make([]bool, len(s)+1)
	cur := make([]bool, len(s)+1)
	prev[0] = true
	for pi := 0; pi < len(pattern); pi++ {
		p := pattern[pi]
		cur[0] = prev[0] && p == '%'
		for i := 1; i <= len(s); i++ {
			switch p {
			case '%':
				cur[i] = cur[i-1] || prev[i]
			case '_':
				cur[i] = prev[i-1]
			default:
				cur[i] = prev[i-1] && s[i-1] == p
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(s)]
}
