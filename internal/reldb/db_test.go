package reldb

import (
	"bytes"
	"strings"
	"testing"
)

func movieSchema(t *testing.T) *DB {
	t.Helper()
	db := New()
	mustCreate(t, db, "movies", []Column{
		{Name: "id", Type: KindInt, PrimaryKey: true},
		{Name: "title", Type: KindText},
		{Name: "budget", Type: KindFloat},
	})
	mustCreate(t, db, "persons", []Column{
		{Name: "id", Type: KindInt, PrimaryKey: true},
		{Name: "name", Type: KindText},
	})
	mustCreate(t, db, "directed_by", []Column{
		{Name: "movie_id", Type: KindInt, FK: &ForeignKey{Table: "movies", Column: "id"}},
		{Name: "person_id", Type: KindInt, FK: &ForeignKey{Table: "persons", Column: "id"}},
	})
	return db
}

func mustCreate(t *testing.T, db *DB, name string, cols []Column) *Table {
	t.Helper()
	tbl, err := db.CreateTable(name, cols)
	if err != nil {
		t.Fatalf("CreateTable(%s): %v", name, err)
	}
	return tbl
}

func mustInsert(t *testing.T, db *DB, table string, rows ...[]Value) {
	t.Helper()
	for _, r := range rows {
		if _, err := db.Insert(table, r); err != nil {
			t.Fatalf("Insert(%s, %v): %v", table, r, err)
		}
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := New()
	if _, err := db.CreateTable("", []Column{{Name: "a", Type: KindText}}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := db.CreateTable("t", nil); err == nil {
		t.Fatal("zero columns accepted")
	}
	mustCreate(t, db, "t", []Column{{Name: "a", Type: KindText}})
	if _, err := db.CreateTable("T", []Column{{Name: "a", Type: KindText}}); err == nil {
		t.Fatal("duplicate (case-insensitive) table accepted")
	}
	if _, err := db.CreateTable("u", []Column{{Name: "a", Type: KindText}, {Name: "A", Type: KindInt}}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := db.CreateTable("v", []Column{
		{Name: "a", Type: KindInt, PrimaryKey: true},
		{Name: "b", Type: KindInt, PrimaryKey: true},
	}); err == nil {
		t.Fatal("two primary keys accepted")
	}
	if _, err := db.CreateTable("w", []Column{
		{Name: "x", Type: KindInt, FK: &ForeignKey{Table: "missing", Column: "id"}},
	}); err == nil {
		t.Fatal("FK to missing table accepted")
	}
	if _, err := db.CreateTable("w", []Column{
		{Name: "x", Type: KindText, FK: &ForeignKey{Table: "t", Column: "a"}},
	}); err == nil {
		t.Fatal("FK to non-PK column accepted")
	}
}

func TestInsertTypeAndConstraints(t *testing.T) {
	db := movieSchema(t)
	mustInsert(t, db, "movies", []Value{Int(1), Text("Brazil"), Float(1e6)})

	// Duplicate PK.
	if _, err := db.Insert("movies", []Value{Int(1), Text("Alien"), Null}); err == nil {
		t.Fatal("duplicate PK accepted")
	}
	// PK is NOT NULL implicitly.
	if _, err := db.Insert("movies", []Value{Null, Text("Alien"), Null}); err == nil {
		t.Fatal("NULL PK accepted")
	}
	// Arity.
	if _, err := db.Insert("movies", []Value{Int(2)}); err == nil {
		t.Fatal("short row accepted")
	}
	// Unknown table.
	if _, err := db.Insert("ghosts", []Value{Int(1)}); err == nil {
		t.Fatal("unknown table accepted")
	}
	// Coercion: int into float column, numeric text into int column.
	if _, err := db.Insert("movies", []Value{Text("2"), Text("Alien"), Int(5)}); err != nil {
		t.Fatalf("coercion failed: %v", err)
	}
	row := db.MustTable("movies").Row(1)
	if row[0].Kind != KindInt || row[0].I != 2 {
		t.Fatalf("text->int coercion produced %v", row[0])
	}
	if row[2].Kind != KindFloat || row[2].Num != 5 {
		t.Fatalf("int->float coercion produced %v", row[2])
	}
	// Bad coercion.
	if _, err := db.Insert("movies", []Value{Text("abc"), Text("X"), Null}); err == nil {
		t.Fatal("non-numeric text into INT accepted")
	}
}

func TestForeignKeyEnforcement(t *testing.T) {
	db := movieSchema(t)
	mustInsert(t, db, "movies", []Value{Int(1), Text("Brazil"), Null})
	mustInsert(t, db, "persons", []Value{Int(10), Text("Terry Gilliam")})

	if _, err := db.Insert("directed_by", []Value{Int(1), Int(10)}); err != nil {
		t.Fatalf("valid FK insert failed: %v", err)
	}
	if _, err := db.Insert("directed_by", []Value{Int(99), Int(10)}); err == nil {
		t.Fatal("dangling movie FK accepted")
	}
	if _, err := db.Insert("directed_by", []Value{Int(1), Int(99)}); err == nil {
		t.Fatal("dangling person FK accepted")
	}
	// NULL FK is allowed (not NOT NULL).
	if _, err := db.Insert("directed_by", []Value{Null, Int(10)}); err != nil {
		t.Fatalf("NULL FK should be allowed: %v", err)
	}
}

func TestInsertMap(t *testing.T) {
	db := movieSchema(t)
	if _, err := db.InsertMap("movies", map[string]Value{"id": Int(1), "title": Text("Alien")}); err != nil {
		t.Fatal(err)
	}
	row := db.MustTable("movies").Row(0)
	if !row[2].IsNull() {
		t.Fatal("unspecified column should be NULL")
	}
	if _, err := db.InsertMap("movies", map[string]Value{"id": Int(2), "nope": Null}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := db.InsertMap("ghosts", nil); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestLookupPKAndScan(t *testing.T) {
	db := movieSchema(t)
	mustInsert(t, db, "movies",
		[]Value{Int(1), Text("Brazil"), Null},
		[]Value{Int(2), Text("Alien"), Null},
	)
	m := db.MustTable("movies")
	id, ok := m.LookupPK(Int(2))
	if !ok || id != 1 {
		t.Fatalf("LookupPK = %d,%v", id, ok)
	}
	if _, ok := m.LookupPK(Int(3)); ok {
		t.Fatal("missing PK found")
	}
	var titles []string
	m.Scan(func(_ int, row []Value) bool {
		s, _ := row[1].AsText()
		titles = append(titles, s)
		return true
	})
	if strings.Join(titles, ",") != "Brazil,Alien" {
		t.Fatalf("Scan order wrong: %v", titles)
	}
	// Early stop.
	count := 0
	m.Scan(func(int, []Value) bool { count++; return false })
	if count != 1 {
		t.Fatal("Scan did not stop")
	}
	// No PK table.
	link := db.MustTable("directed_by")
	if _, ok := link.LookupPK(Int(1)); ok {
		t.Fatal("LookupPK on PK-less table should fail")
	}
}

func TestTextAndFKColumnHelpers(t *testing.T) {
	db := movieSchema(t)
	m := db.MustTable("movies")
	tc := m.TextColumns()
	if len(tc) != 1 || m.Columns[tc[0]].Name != "title" {
		t.Fatalf("TextColumns = %v", tc)
	}
	link := db.MustTable("directed_by")
	if got := link.ForeignKeyColumns(); len(got) != 2 {
		t.Fatalf("ForeignKeyColumns = %v", got)
	}
	if !link.IsLinkTable() {
		t.Fatal("directed_by should be a link table")
	}
	if m.IsLinkTable() {
		t.Fatal("movies is not a link table")
	}
	links := db.LinkTables()
	if len(links) != 1 || links[0].Name != "directed_by" {
		t.Fatalf("LinkTables = %v", links)
	}
}

func TestLinkTableWithSurrogateKey(t *testing.T) {
	db := movieSchema(t)
	mustCreate(t, db, "acted_in", []Column{
		{Name: "id", Type: KindInt, PrimaryKey: true},
		{Name: "movie_id", Type: KindInt, FK: &ForeignKey{Table: "movies", Column: "id"}},
		{Name: "person_id", Type: KindInt, FK: &ForeignKey{Table: "persons", Column: "id"}},
	})
	if !db.MustTable("acted_in").IsLinkTable() {
		t.Fatal("surrogate-key link table not detected")
	}
}

func TestDistinctText(t *testing.T) {
	db := movieSchema(t)
	mustInsert(t, db, "movies",
		[]Value{Int(1), Text("Brazil"), Null},
		[]Value{Int(2), Text("Alien"), Null},
		[]Value{Int(3), Text("Brazil"), Null},
		[]Value{Int(4), Null, Null},
	)
	got := db.MustTable("movies").DistinctText(1)
	if strings.Join(got, ",") != "Alien,Brazil" {
		t.Fatalf("DistinctText = %v", got)
	}
}

func TestTablesOrderAndString(t *testing.T) {
	db := movieSchema(t)
	names := []string{}
	for _, tbl := range db.Tables() {
		names = append(names, tbl.Name)
	}
	if strings.Join(names, ",") != "movies,persons,directed_by" {
		t.Fatalf("Tables order = %v", names)
	}
	if db.NumTables() != 3 {
		t.Fatal("NumTables wrong")
	}
	s := db.String()
	if !strings.Contains(s, "movies(") || !strings.Contains(s, "-> movies.id") {
		t.Fatalf("String() = %s", s)
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().MustTable("missing")
}

func TestValueBasics(t *testing.T) {
	if !Null.IsNull() || Text("x").IsNull() {
		t.Fatal("IsNull wrong")
	}
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Fatal("Int.AsFloat wrong")
	}
	if f, ok := Bool(true).AsFloat(); !ok || f != 1 {
		t.Fatal("Bool.AsFloat wrong")
	}
	if _, ok := Text("x").AsFloat(); ok {
		t.Fatal("Text.AsFloat should fail")
	}
	if s, ok := Text("hi").AsText(); !ok || s != "hi" {
		t.Fatal("AsText wrong")
	}
	if _, ok := Int(1).AsText(); ok {
		t.Fatal("Int.AsText should fail")
	}
	for _, c := range []struct {
		v    Value
		want string
	}{
		{Null, "NULL"}, {Text("a"), "a"}, {Int(-2), "-2"},
		{Float(1.5), "1.5"}, {Bool(true), "true"}, {Bool(false), "false"},
	} {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q want %q", c.v.Kind, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null, Null, 0},
		{Null, Int(0), -1},
		{Int(0), Null, 1},
		{Int(1), Int(2), -1},
		{Int(2), Float(2), 0},
		{Float(2.5), Int(2), 1},
		{Text("a"), Text("b"), -1},
		{Text("a"), Text("a"), 0},
		{Int(1), Text("a"), -1}, // numbers order before text
		{Text("a"), Int(1), 1},
		{Bool(false), Bool(true), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d want %d", c.a, c.b, got, c.want)
		}
	}
	if Equal(Null, Null) {
		t.Fatal("NULL must not equal NULL")
	}
	if !Equal(Int(2), Float(2)) {
		t.Fatal("cross-kind numeric equality failed")
	}
}

func TestCoerce(t *testing.T) {
	if v, err := Coerce(Text(" 3 "), KindInt); err != nil || v.I != 3 {
		t.Fatalf("text->int: %v %v", v, err)
	}
	if v, err := Coerce(Text("2.5"), KindFloat); err != nil || v.Num != 2.5 {
		t.Fatalf("text->float: %v %v", v, err)
	}
	if v, err := Coerce(Float(4), KindInt); err != nil || v.I != 4 {
		t.Fatalf("whole float->int: %v %v", v, err)
	}
	if _, err := Coerce(Float(4.5), KindInt); err == nil {
		t.Fatal("lossy float->int accepted")
	}
	if v, err := Coerce(Int(7), KindText); err != nil || v.Str != "7" {
		t.Fatalf("int->text: %v %v", v, err)
	}
	if v, err := Coerce(Text("yes"), KindBool); err != nil || v.Num != 1 {
		t.Fatalf("text->bool: %v %v", v, err)
	}
	if _, err := Coerce(Text("maybe"), KindBool); err == nil {
		t.Fatal("bad bool accepted")
	}
	if v, err := Coerce(Null, KindInt); err != nil || !v.IsNull() {
		t.Fatal("NULL should coerce to NULL")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNull: "NULL", KindText: "TEXT", KindInt: "INT",
		KindFloat: "FLOAT", KindBool: "BOOL", Kind(42): "Kind(42)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q want %q", k, k.String(), want)
		}
	}
}

func TestImportCSVInference(t *testing.T) {
	db := New()
	csvData := "id,name,score,note\n1,alice,3.5,hi\n2,bob,4,\n3,carol,2.5,there\n"
	tbl, err := db.ImportCSV("people", strings.NewReader(csvData), CSVOptions{PrimaryKey: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	wantKinds := []Kind{KindInt, KindText, KindFloat, KindText}
	for i, c := range tbl.Columns {
		if c.Type != wantKinds[i] {
			t.Fatalf("column %s inferred %s want %s", c.Name, c.Type, wantKinds[i])
		}
	}
	if tbl.PrimaryKeyColumn() != 0 {
		t.Fatal("PK not set")
	}
	if !tbl.Row(1)[3].IsNull() {
		t.Fatal("empty cell should be NULL")
	}
}

func TestImportCSVForeignKeys(t *testing.T) {
	db := New()
	if _, err := db.ImportCSV("apps", strings.NewReader("id,name\n1,maps\n2,mail\n"), CSVOptions{PrimaryKey: "id"}); err != nil {
		t.Fatal(err)
	}
	tbl, err := db.ImportCSV("reviews", strings.NewReader("id,app_id,text\n1,1,good\n2,2,bad\n"), CSVOptions{
		PrimaryKey:  "id",
		ForeignKeys: map[string]string{"app_id": "apps"},
	})
	if err != nil {
		t.Fatal(err)
	}
	fkCols := tbl.ForeignKeyColumns()
	if len(fkCols) != 1 || tbl.Columns[fkCols[0]].FK.Table != "apps" {
		t.Fatal("FK not declared from CSV options")
	}
	// Dangling reference must fail.
	_, err = db.ImportCSV("bad", strings.NewReader("id,app_id\n1,99\n"), CSVOptions{
		ForeignKeys: map[string]string{"app_id": "apps"},
	})
	if err == nil {
		t.Fatal("dangling CSV FK accepted")
	}
}

func TestImportCSVNullLiteralsAndMixedTypes(t *testing.T) {
	db := New()
	tbl, err := db.ImportCSV("t", strings.NewReader("a,b\n1,x\nNA,2\n2.5,z\n"), CSVOptions{
		NullLiterals: []string{"NA"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Column a: 1 (int) and 2.5 (float) -> FLOAT; NA -> NULL.
	if tbl.Columns[0].Type != KindFloat {
		t.Fatalf("a inferred %s", tbl.Columns[0].Type)
	}
	if !tbl.Row(1)[0].IsNull() {
		t.Fatal("NA should be NULL")
	}
	// Column b: x, 2, z -> TEXT.
	if tbl.Columns[1].Type != KindText {
		t.Fatalf("b inferred %s", tbl.Columns[1].Type)
	}
}

func TestImportCSVErrors(t *testing.T) {
	db := New()
	if _, err := db.ImportCSV("t", strings.NewReader(""), CSVOptions{}); err == nil {
		t.Fatal("empty CSV accepted")
	}
	if _, err := db.ImportCSV("t", strings.NewReader("a,b\n1"), CSVOptions{}); err != nil {
		// Ragged rows are tolerated (missing cells NULL); ensure no error.
		t.Fatalf("ragged row should be tolerated: %v", err)
	}
	if _, err := db.ImportCSV("u", strings.NewReader("a\n1\n"), CSVOptions{
		ForeignKeys: map[string]string{"a": "missing"},
	}); err == nil {
		t.Fatal("FK to missing table accepted")
	}
}

func TestExportCSVRoundTrip(t *testing.T) {
	db := movieSchema(t)
	mustInsert(t, db, "movies",
		[]Value{Int(1), Text("Brazil"), Float(1.5)},
		[]Value{Int(2), Null, Null},
	)
	var buf bytes.Buffer
	if err := db.MustTable("movies").ExportCSV(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := New()
	tbl, err := db2.ImportCSV("movies", &buf, CSVOptions{PrimaryKey: "id"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("round-trip rows = %d", tbl.NumRows())
	}
	if s, _ := tbl.Row(0)[1].AsText(); s != "Brazil" {
		t.Fatal("round-trip title wrong")
	}
	if !tbl.Row(1)[1].IsNull() {
		t.Fatal("round-trip NULL wrong")
	}
}
