package reldb

import (
	"math"
	"strings"
	"testing"
)

func aggFixture(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustExec(`CREATE TABLE sales (id INT PRIMARY KEY, region TEXT, amount FLOAT, qty INT)`)
	db.MustExec(`INSERT INTO sales VALUES
		(1, 'east', 10.5, 2),
		(2, 'east', 4.5, 1),
		(3, 'west', 20, 4),
		(4, 'west', NULL, 3),
		(5, 'north', 7, NULL)`)
	return db
}

func TestCountStarAndColumn(t *testing.T) {
	db := aggFixture(t)
	res := db.MustExec(`SELECT COUNT(*) FROM sales`)
	if res.Rows[0][0].I != 5 {
		t.Fatalf("COUNT(*) = %v", res.Rows[0][0])
	}
	// COUNT(col) skips NULLs.
	res = db.MustExec(`SELECT COUNT(amount) FROM sales`)
	if res.Rows[0][0].I != 4 {
		t.Fatalf("COUNT(amount) = %v", res.Rows[0][0])
	}
	if res.Columns[0] != "count(amount)" {
		t.Fatalf("header = %v", res.Columns)
	}
}

func TestSumAvgMinMax(t *testing.T) {
	db := aggFixture(t)
	res := db.MustExec(`SELECT SUM(amount), AVG(amount), MIN(amount), MAX(amount) FROM sales`)
	row := res.Rows[0]
	if row[0].Num != 42 {
		t.Fatalf("SUM = %v", row[0])
	}
	if math.Abs(row[1].Num-10.5) > 1e-12 {
		t.Fatalf("AVG = %v", row[1])
	}
	if row[2].Num != 4.5 || row[3].Num != 20 {
		t.Fatalf("MIN/MAX = %v %v", row[2], row[3])
	}
}

func TestGroupBy(t *testing.T) {
	db := aggFixture(t)
	res := db.MustExec(`SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	byRegion := map[string][]Value{}
	for _, r := range res.Rows {
		byRegion[r[0].Str] = r
	}
	if byRegion["east"][1].I != 2 || byRegion["east"][2].Num != 15 {
		t.Fatalf("east = %v", byRegion["east"])
	}
	if byRegion["west"][1].I != 2 || byRegion["west"][2].Num != 20 {
		t.Fatalf("west = %v (NULL amount must not contribute)", byRegion["west"])
	}
	if byRegion["north"][1].I != 1 {
		t.Fatalf("north = %v", byRegion["north"])
	}
}

func TestGroupByDeterministicOrder(t *testing.T) {
	db := aggFixture(t)
	a := db.MustExec(`SELECT region, COUNT(*) FROM sales GROUP BY region`)
	b := db.MustExec(`SELECT region, COUNT(*) FROM sales GROUP BY region`)
	for i := range a.Rows {
		if a.Rows[i][0].Str != b.Rows[i][0].Str {
			t.Fatal("group order not deterministic")
		}
	}
}

func TestGroupByWithWhereAndJoin(t *testing.T) {
	db := aggFixture(t)
	db.MustExec(`CREATE TABLE regions (name TEXT, manager TEXT)`)
	db.MustExec(`INSERT INTO regions VALUES ('east', 'ann'), ('west', 'bob'), ('north', 'cid')`)
	res := db.MustExec(`
		SELECT regions.manager, SUM(sales.amount) AS total
		FROM sales JOIN regions ON sales.region = regions.name
		WHERE sales.qty IS NOT NULL
		GROUP BY regions.manager`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Columns[1] != "total" {
		t.Fatalf("alias header = %v", res.Columns)
	}
}

func TestAggregateAlias(t *testing.T) {
	db := aggFixture(t)
	res := db.MustExec(`SELECT COUNT(*) AS n FROM sales`)
	if res.Columns[0] != "n" {
		t.Fatalf("headers = %v", res.Columns)
	}
}

func TestAvgOverEmptyIsNull(t *testing.T) {
	db := aggFixture(t)
	res := db.MustExec(`SELECT AVG(amount), COUNT(*) FROM sales WHERE region = 'nowhere'`)
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("AVG over empty = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].I != 0 {
		t.Fatalf("COUNT over empty = %v", res.Rows[0][1])
	}
}

func TestMinMaxOnText(t *testing.T) {
	db := aggFixture(t)
	res := db.MustExec(`SELECT MIN(region), MAX(region) FROM sales`)
	if res.Rows[0][0].Str != "east" || res.Rows[0][1].Str != "west" {
		t.Fatalf("MIN/MAX text = %v", res.Rows[0])
	}
}

func TestGroupByLimit(t *testing.T) {
	db := aggFixture(t)
	res := db.MustExec(`SELECT region, COUNT(*) FROM sales GROUP BY region LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("limit over groups = %d", len(res.Rows))
	}
}

func TestAggregateErrors(t *testing.T) {
	db := aggFixture(t)
	bad := []struct {
		sql, wantErr string
	}{
		{`SELECT region, COUNT(*) FROM sales`, "GROUP BY"},
		{`SELECT *, COUNT(*) FROM sales`, ""},
		{`SELECT SUM(*) FROM sales`, "only COUNT"},
		{`SELECT COUNT(*) FROM sales ORDER BY region`, "ORDER BY"},
		{`SELECT DISTINCT COUNT(*) FROM sales`, "DISTINCT"},
		{`SELECT SUM(ghost) FROM sales`, "unknown column"},
		{`SELECT region FROM sales GROUP BY ghost`, "unknown column"},
	}
	for _, c := range bad {
		_, err := db.Exec(c.sql)
		if err == nil {
			t.Errorf("no error: %s", c.sql)
			continue
		}
		if c.wantErr != "" && !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.sql, err, c.wantErr)
		}
	}
}

func TestColumnsNamedLikeAggregatesStillWork(t *testing.T) {
	// SUM/AVG/MIN/MAX are contextual: a column named "sum" is fine.
	db := New()
	db.MustExec(`CREATE TABLE t (sum INT, avg TEXT)`)
	db.MustExec(`INSERT INTO t VALUES (3, 'x')`)
	res := db.MustExec(`SELECT sum, avg FROM t`)
	if res.Rows[0][0].I != 3 || res.Rows[0][1].Str != "x" {
		t.Fatalf("contextual keywords broke plain columns: %v", res.Rows)
	}
	// And aggregating over them works too.
	res = db.MustExec(`SELECT SUM(sum) FROM t`)
	if res.Rows[0][0].Num != 3 {
		t.Fatalf("SUM(sum) = %v", res.Rows[0])
	}
}
