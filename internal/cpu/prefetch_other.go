//go:build !amd64

package cpu

import "unsafe"

// Prefetching is an amd64-only optimisation for now; other
// architectures pay nothing for the calls once the compiler inlines the
// empty bodies.

func PrefetchT0(p unsafe.Pointer) {}

func PrefetchRange(p unsafe.Pointer, n int) {}
