//go:build amd64

package cpu

import "unsafe"

// PrefetchT0 hints the cache hierarchy to pull the line containing p
// into every level. It is a hint: no fault occurs on a bad address the
// hardware cannot translate, and the scheduler is free to drop it.
//
//go:noescape
func PrefetchT0(p unsafe.Pointer)

// PrefetchRange hints every cache line of [p, p+n). The batched query
// engine uses it to start pulling a node's code block (or an embedding
// row) while other queries' arithmetic fills the latency.
//
//go:noescape
func PrefetchRange(p unsafe.Pointer, n int)
