//go:build amd64

package cpu

// cpuid and xgetbv are implemented in cpuid_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// probe detects the best usable kernel tier. SSE2 is architectural on
// amd64; AVX2 additionally requires the CPUID feature bit AND the OS to
// have enabled XMM+YMM state saving (OSXSAVE set and XCR0 bits 1..2),
// otherwise the registers are not preserved across context switches and
// using them silently corrupts data.
func probe() (Level, bool) {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return SSE2, false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		bitFMA     = 1 << 12
		bitOSXSAVE = 1 << 27
	)
	if ecx1&bitOSXSAVE == 0 {
		return SSE2, false
	}
	if xcr0, _ := xgetbv(); xcr0&0x6 != 0x6 { // XMM and YMM state enabled
		return SSE2, false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const bitAVX2 = 1 << 5
	if ebx7&bitAVX2 == 0 {
		return SSE2, false
	}
	return AVX2, ecx1&bitFMA != 0
}
