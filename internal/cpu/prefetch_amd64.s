//go:build amd64

#include "textflag.h"

// func PrefetchT0(p unsafe.Pointer)
TEXT ·PrefetchT0(SB), NOSPLIT, $0-8
	MOVQ p+0(FP), AX
	PREFETCHT0 (AX)
	RET

// func PrefetchRange(p unsafe.Pointer, n int)
//
// Issues one PREFETCHT0 per 64-byte line covering [p, p+n).
TEXT ·PrefetchRange(SB), NOSPLIT, $0-16
	MOVQ p+0(FP), AX
	MOVQ n+8(FP), CX
	TESTQ CX, CX
	JLE  done

loop:
	PREFETCHT0 (AX)
	ADDQ $64, AX
	SUBQ $64, CX
	JG   loop

done:
	RET
