// Package cpu centralises runtime CPU-feature detection for the SIMD
// kernels in internal/vec and internal/quant. Dispatch is decided once,
// at process start (or explicitly via SetLevel in tests), and the hot
// kernels read a plain package variable — no atomic, no indirection —
// so the per-call dispatch cost is one predictable branch.
//
// The detected level can be capped with the RETRO_SIMD environment
// variable, which is how CI proves every dispatch branch on one
// machine:
//
//	RETRO_SIMD=auto    use the best level the hardware supports (default)
//	RETRO_SIMD=avx2    require AVX2 (fails closed to the detected level)
//	RETRO_SIMD=sse2    force the amd64 baseline kernels
//	RETRO_SIMD=scalar  force the portable Go kernels everywhere
//
// Levels are strictly ordered: a kernel compiled for a level is only
// selected when the hardware (and the OS's saved-register state, for
// AVX) supports it, so a misdetected machine degrades to a slower
// correct kernel, never to an illegal instruction.
package cpu

import (
	"os"
	"strings"
)

// Level identifies one dispatch tier of the SIMD kernels.
type Level int32

const (
	// Scalar is the portable Go kernel tier; always available.
	Scalar Level = iota
	// SSE2 is the amd64 baseline tier (guaranteed by the architecture,
	// so it needs no runtime probe beyond being on amd64).
	SSE2
	// AVX2 is the 256-bit integer/float tier; requires the AVX2 CPUID
	// bit plus OS support for saving the YMM state. The float64 kernels
	// additionally use FMA only when the FMA bit is present (see HasFMA).
	AVX2
)

// String names the level as the RETRO_SIMD values spell it.
func (l Level) String() string {
	switch l {
	case AVX2:
		return "avx2"
	case SSE2:
		return "sse2"
	default:
		return "scalar"
	}
}

var (
	// detected is the best level the hardware supports, probed once at
	// init and never changed.
	detected Level
	// hasFMA records the FMA3 CPUID bit (probed with AVX2; the float64
	// dot kernel uses fused multiply-add only when both are present).
	hasFMA bool
	// active is the level kernels dispatch on: detected, capped by
	// RETRO_SIMD, overridable by SetLevel for tests.
	active Level
)

func init() {
	detected, hasFMA = probe()
	active = capLevel(detected, os.Getenv("RETRO_SIMD"))
}

// capLevel applies a RETRO_SIMD-style cap to a detected level. Unknown
// values (and "auto"/"") leave the detected level in place; a cap above
// the detected level cannot raise it.
func capLevel(det Level, env string) Level {
	switch strings.ToLower(strings.TrimSpace(env)) {
	case "scalar":
		return Scalar
	case "sse2":
		return min(det, SSE2)
	case "avx2":
		return min(det, AVX2)
	default:
		return det
	}
}

// Active returns the level the kernels currently dispatch on.
func Active() Level { return active }

// Detected returns the best level the hardware supports, ignoring any
// RETRO_SIMD cap or SetLevel override.
func Detected() Level { return detected }

// HasFMA reports whether fused multiply-add is available (and the
// active level admits vector kernels at all). The float64 kernels pick
// the FMA body only when this holds.
func HasFMA() bool { return hasFMA && active >= AVX2 }

// SetLevel overrides the active dispatch level, for tests that prove
// kernel parity on every branch. Levels above Detected() are clamped —
// the override can never select an illegal instruction. It returns the
// level actually installed. Not safe to call concurrently with running
// kernels; tests switch levels between runs, not during them.
func SetLevel(l Level) Level {
	if l > detected {
		l = detected
	}
	if l < Scalar {
		l = Scalar
	}
	active = l
	return active
}

// Features describes the detected hardware and the active dispatch
// level for telemetry and perf reports, e.g. "avx2+fma (active: sse2)".
func Features() string {
	var b strings.Builder
	b.WriteString(detected.String())
	if hasFMA {
		b.WriteString("+fma")
	}
	if active != detected {
		b.WriteString(" (active: ")
		b.WriteString(active.String())
		b.WriteString(")")
	}
	return b.String()
}
