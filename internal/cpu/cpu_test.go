package cpu

import (
	"runtime"
	"testing"
	"unsafe"
)

func TestDetectedLevelSane(t *testing.T) {
	det := Detected()
	if runtime.GOARCH == "amd64" && det < SSE2 {
		t.Fatalf("amd64 must detect at least SSE2, got %v", det)
	}
	if runtime.GOARCH != "amd64" && det != Scalar {
		t.Fatalf("non-amd64 must detect Scalar, got %v", det)
	}
}

func TestSetLevelClampsToDetected(t *testing.T) {
	orig := Active()
	defer SetLevel(orig)
	if got := SetLevel(AVX2); got > Detected() {
		t.Fatalf("SetLevel(AVX2) installed %v above detected %v", got, Detected())
	}
	if got := SetLevel(Scalar); got != Scalar {
		t.Fatalf("SetLevel(Scalar) = %v", got)
	}
	if got := SetLevel(-1); got != Scalar {
		t.Fatalf("SetLevel(-1) = %v, want clamp to Scalar", got)
	}
}

func TestCapLevel(t *testing.T) {
	cases := []struct {
		det  Level
		env  string
		want Level
	}{
		{AVX2, "", AVX2},
		{AVX2, "auto", AVX2},
		{AVX2, "AVX2", AVX2},
		{AVX2, "sse2", SSE2},
		{AVX2, "scalar", Scalar},
		{SSE2, "avx2", SSE2}, // a cap can never raise the level
		{Scalar, "sse2", Scalar},
		{AVX2, "bogus", AVX2}, // unknown values fall back to detected
	}
	for _, c := range cases {
		if got := capLevel(c.det, c.env); got != c.want {
			t.Errorf("capLevel(%v, %q) = %v, want %v", c.det, c.env, got, c.want)
		}
	}
}

func TestLevelString(t *testing.T) {
	if Scalar.String() != "scalar" || SSE2.String() != "sse2" || AVX2.String() != "avx2" {
		t.Fatal("Level.String mismatch")
	}
	if Features() == "" {
		t.Fatal("empty Features()")
	}
}

// TestPrefetchDoesNotCrash exercises the hint helpers over real and
// edge-case spans; prefetch must be side-effect free.
func TestPrefetchDoesNotCrash(t *testing.T) {
	buf := make([]byte, 4096)
	PrefetchT0(unsafe.Pointer(&buf[0]))
	PrefetchRange(unsafe.Pointer(&buf[0]), len(buf))
	PrefetchRange(unsafe.Pointer(&buf[0]), 0)
	PrefetchRange(unsafe.Pointer(&buf[0]), -1)
	PrefetchRange(unsafe.Pointer(&buf[0]), 1) // partial line
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("prefetch mutated buf[%d]", i)
		}
	}
}
