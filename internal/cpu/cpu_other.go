//go:build !amd64

package cpu

// probe on non-amd64 architectures selects the portable kernels. On
// arm64 the natural next tier is NEON (SMLAL/SDOT for the int8 dot,
// FMLA for float64); the dispatch plumbing here and in the kernel
// packages is ready for it — a NEON tier slots in as a new Level above
// Scalar with its own probe — but no NEON kernels exist yet, so arm64
// deliberately reports Scalar rather than advertising a tier that would
// fall through.
func probe() (Level, bool) { return Scalar, false }
