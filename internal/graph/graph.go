// Package graph implements §3.4 of the paper: the common property-graph
// representation of a database's text values. Nodes are the text values
// plus one blank node per column (category); edges are the relation-group
// edges plus category-membership edges. DeepWalk consumes this graph.
package graph

import (
	"fmt"
	"math/rand"

	"github.com/retrodb/retro/internal/extract"
)

// Graph is an undirected multigraph over text-value and category nodes.
// Node ids 0..NumText-1 are text values (matching extract ids);
// NumText..NumText+NumCat-1 are blank category nodes.
type Graph struct {
	NumText int
	NumCat  int
	adj     [][]int32
	labels  []string
}

// NumNodes returns the total node count.
func (g *Graph) NumNodes() int { return g.NumText + g.NumCat }

// CategoryNode maps a category id to its blank node id.
func (g *Graph) CategoryNode(cat int) int { return g.NumText + cat }

// IsCategoryNode reports whether node id is a blank category node.
func (g *Graph) IsCategoryNode(id int) bool { return id >= g.NumText }

// Label returns a human-readable node label ("text" or "column:t.c").
func (g *Graph) Label(id int) string { return g.labels[id] }

// Degree returns the number of incident edge endpoints at node id.
func (g *Graph) Degree(id int) int { return len(g.adj[id]) }

// Neighbors returns the adjacency list of node id (not a copy).
func (g *Graph) Neighbors(id int) []int32 { return g.adj[id] }

// NumEdges returns the undirected edge count (each edge stored twice).
func (g *Graph) NumEdges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// Build compiles the §3.4 graph G = (V, E): V = V_T ∪ V_C and
// E = ⋃_r E_r ∪ E_C.
func Build(ex *extract.Extraction) *Graph {
	g := &Graph{
		NumText: len(ex.Values),
		NumCat:  len(ex.Categories),
	}
	g.adj = make([][]int32, g.NumNodes())
	g.labels = make([]string, g.NumNodes())
	for _, v := range ex.Values {
		g.labels[v.ID] = v.Text
	}
	for _, c := range ex.Categories {
		g.labels[g.CategoryNode(c.ID)] = "column:" + c.Name()
	}
	addEdge := func(a, b int) {
		g.adj[a] = append(g.adj[a], int32(b))
		g.adj[b] = append(g.adj[b], int32(a))
	}
	for _, r := range ex.Relations {
		for _, e := range r.Edges {
			addEdge(e.From, e.To)
		}
	}
	for _, c := range ex.Categories {
		cn := g.CategoryNode(c.ID)
		for _, m := range c.Members {
			addEdge(m, cn)
		}
	}
	return g
}

// RandomWalk performs a uniform random walk of the given length (number
// of nodes including the start). Walks stop early at isolated nodes.
func (g *Graph) RandomWalk(rng *rand.Rand, start, length int) []int {
	if start < 0 || start >= g.NumNodes() {
		panic(fmt.Sprintf("graph: walk start %d out of range", start))
	}
	walk := make([]int, 0, length)
	cur := start
	walk = append(walk, cur)
	for len(walk) < length {
		nbrs := g.adj[cur]
		if len(nbrs) == 0 {
			break
		}
		cur = int(nbrs[rng.Intn(len(nbrs))])
		walk = append(walk, cur)
	}
	return walk
}

// WalkCorpus generates walksPerNode random walks from every node, in a
// node order shuffled per pass (the DeepWalk schedule). The result is a
// corpus of node-id sentences for skip-gram training.
func (g *Graph) WalkCorpus(rng *rand.Rand, walksPerNode, walkLength int) [][]int {
	n := g.NumNodes()
	corpus := make([][]int, 0, n*walksPerNode)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for pass := 0; pass < walksPerNode; pass++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, start := range order {
			corpus = append(corpus, g.RandomWalk(rng, start, walkLength))
		}
	}
	return corpus
}

// ConnectedComponent returns all node ids reachable from start (including
// start). Used by incremental retrofitting to bound re-solves.
func (g *Graph) ConnectedComponent(start int) []int {
	seen := make(map[int]bool, 64)
	stack := []int{start}
	seen[start] = true
	var out []int
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, cur)
		for _, nb := range g.adj[cur] {
			if !seen[int(nb)] {
				seen[int(nb)] = true
				stack = append(stack, int(nb))
			}
		}
	}
	return out
}
