package graph

import (
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/extract"
	"github.com/retrodb/retro/internal/reldb"
)

func fixtureExtraction(t *testing.T) *extract.Extraction {
	t.Helper()
	db := reldb.New()
	db.MustExec(`CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, director TEXT)`)
	db.MustExec(`INSERT INTO movies VALUES (1, 'Brazil', 'Terry Gilliam'), (2, 'Alien', 'Ridley Scott')`)
	ex, err := extract.FromDB(db, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

func TestBuildNodesAndEdges(t *testing.T) {
	ex := fixtureExtraction(t)
	g := Build(ex)
	// 4 text values + 2 category nodes.
	if g.NumText != 4 || g.NumCat != 2 || g.NumNodes() != 6 {
		t.Fatalf("nodes: text=%d cat=%d", g.NumText, g.NumCat)
	}
	// Edges: 2 relation edges + 4 category-membership edges.
	if g.NumEdges() != 6 {
		t.Fatalf("edges = %d, want 6", g.NumEdges())
	}
	// Every text node: 1 relation edge + 1 category edge = degree 2.
	for id := 0; id < g.NumText; id++ {
		if g.Degree(id) != 2 {
			t.Fatalf("text node %d degree = %d", id, g.Degree(id))
		}
	}
	// Category nodes have degree 2 (two members each).
	for c := 0; c < g.NumCat; c++ {
		if g.Degree(g.CategoryNode(c)) != 2 {
			t.Fatalf("category node %d degree = %d", c, g.Degree(g.CategoryNode(c)))
		}
	}
}

func TestLabelsAndCategoryNodes(t *testing.T) {
	ex := fixtureExtraction(t)
	g := Build(ex)
	id, ok := ex.Lookup("movies", "title", "Brazil")
	if !ok {
		t.Fatal("Brazil missing")
	}
	if g.Label(id) != "Brazil" {
		t.Fatalf("label = %q", g.Label(id))
	}
	if !g.IsCategoryNode(g.CategoryNode(0)) || g.IsCategoryNode(0) {
		t.Fatal("IsCategoryNode wrong")
	}
	catLabel := g.Label(g.CategoryNode(0))
	if catLabel != "column:movies.title" && catLabel != "column:movies.director" {
		t.Fatalf("category label = %q", catLabel)
	}
}

func TestRandomWalkStaysInGraph(t *testing.T) {
	ex := fixtureExtraction(t)
	g := Build(ex)
	rng := rand.New(rand.NewSource(1))
	for start := 0; start < g.NumNodes(); start++ {
		walk := g.RandomWalk(rng, start, 10)
		if len(walk) != 10 {
			t.Fatalf("walk length = %d (graph is connected, should not stop)", len(walk))
		}
		if walk[0] != start {
			t.Fatal("walk must start at start")
		}
		for i := 1; i < len(walk); i++ {
			found := false
			for _, nb := range g.Neighbors(walk[i-1]) {
				if int(nb) == walk[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("walk step %d->%d is not an edge", walk[i-1], walk[i])
			}
		}
	}
}

func TestRandomWalkIsolatedNode(t *testing.T) {
	// A single-column table yields text nodes connected only to the
	// category node; removing relations keeps the graph connected, so
	// instead build a graph manually via an extraction with one value and
	// verify early stop at a dangling node is impossible here. We instead
	// check panics for bad start.
	ex := fixtureExtraction(t)
	g := Build(ex)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range start")
		}
	}()
	g.RandomWalk(rand.New(rand.NewSource(1)), g.NumNodes(), 5)
}

func TestWalkCorpusShape(t *testing.T) {
	ex := fixtureExtraction(t)
	g := Build(ex)
	rng := rand.New(rand.NewSource(2))
	corpus := g.WalkCorpus(rng, 3, 5)
	if len(corpus) != 3*g.NumNodes() {
		t.Fatalf("corpus size = %d, want %d", len(corpus), 3*g.NumNodes())
	}
	// Every node appears as a start exactly walksPerNode times.
	starts := make(map[int]int)
	for _, w := range corpus {
		starts[w[0]]++
	}
	for id := 0; id < g.NumNodes(); id++ {
		if starts[id] != 3 {
			t.Fatalf("node %d started %d walks, want 3", id, starts[id])
		}
	}
}

func TestWalkCorpusDeterministic(t *testing.T) {
	ex := fixtureExtraction(t)
	g := Build(ex)
	a := g.WalkCorpus(rand.New(rand.NewSource(7)), 2, 4)
	b := g.WalkCorpus(rand.New(rand.NewSource(7)), 2, 4)
	if len(a) != len(b) {
		t.Fatal("corpus sizes differ")
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("corpus not deterministic under fixed seed")
			}
		}
	}
}

func TestConnectedComponent(t *testing.T) {
	ex := fixtureExtraction(t)
	g := Build(ex)
	// The fixture graph is fully connected through category nodes.
	comp := g.ConnectedComponent(0)
	if len(comp) != g.NumNodes() {
		t.Fatalf("component size = %d, want %d", len(comp), g.NumNodes())
	}
}

func TestConnectedComponentDisconnected(t *testing.T) {
	db := reldb.New()
	db.MustExec(`CREATE TABLE a (x TEXT)`)
	db.MustExec(`CREATE TABLE b (y TEXT)`)
	db.MustExec(`INSERT INTO a VALUES ('p'), ('q')`)
	db.MustExec(`INSERT INTO b VALUES ('r')`)
	ex, err := extract.FromDB(db, extract.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := Build(ex)
	// Component of 'p': p, q and category a.x = 3 nodes.
	comp := g.ConnectedComponent(0)
	if len(comp) != 3 {
		t.Fatalf("component = %v", comp)
	}
}
