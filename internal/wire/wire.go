// Package wire provides the little-endian binary encoding helpers shared
// by the persistence formats (the HNSW graph section and the model
// snapshot). Writers and readers carry a sticky error so serialisation
// code reads as a flat sequence of field calls with a single check at the
// end.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Writer encodes fixed-width little-endian values onto an io.Writer.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
	buf [8]byte
}

// NewWriter wraps w. Call Flush before relying on the output.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Count returns the number of bytes written so far (excluding buffering).
func (w *Writer) Count() int64 { return w.n }

// Err returns the first error encountered.
func (w *Writer) Err() error { return w.err }

// Flush drains the buffer and returns the first error encountered.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	w.err = w.w.Flush()
	return w.err
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.w.Write(p)
	w.n += int64(n)
	w.err = err
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.write(w.buf[:8])
}

// I32 writes a little-endian int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// I64 writes a little-endian int64.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// F32 writes an IEEE-754 float32.
func (w *Writer) F32(v float32) { w.U32(math.Float32bits(v)) }

// F64 writes an IEEE-754 float64.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes writes raw bytes with no length prefix.
func (w *Writer) Bytes(p []byte) { w.write(p) }

// String writes a uint32 length prefix followed by the bytes.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.write([]byte(s))
}

// Reader decodes values written by Writer. Every accessor returns the
// zero value once an error (including io.EOF and any short read, both
// normalised to io.ErrUnexpectedEOF) has occurred; check Err at the end.
type Reader struct {
	r   io.Reader
	n   int64
	err error
	buf [8]byte
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Count returns the number of bytes consumed so far.
func (r *Reader) Count() int64 { return r.n }

// Err returns the first error encountered.
func (r *Reader) Err() error { return r.err }

// Fail records an error (used by callers for validation failures) so
// subsequent reads become no-ops. The first failure wins.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *Reader) read(p []byte) bool {
	if r.err != nil {
		return false
	}
	n, err := io.ReadFull(r.r, p)
	r.n += int64(n)
	if err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = err
		return false
	}
	return true
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if !r.read(r.buf[:1]) {
		return 0
	}
	return r.buf[0]
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if !r.read(r.buf[:4]) {
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[:4])
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if !r.read(r.buf[:8]) {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:8])
}

// I32 reads a little-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F32 reads an IEEE-754 float32.
func (r *Reader) F32() float32 { return math.Float32frombits(r.U32()) }

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes reads exactly len(p) raw bytes into p.
func (r *Reader) Bytes(p []byte) { r.read(p) }

// String reads a uint32 length prefix and that many bytes, rejecting
// lengths above max (a corruption guard against huge allocations).
func (r *Reader) String(max int) string {
	n := r.U32()
	if r.err != nil {
		return ""
	}
	if int64(n) > int64(max) {
		r.Fail(fmt.Errorf("wire: string length %d exceeds limit %d", n, max))
		return ""
	}
	p := make([]byte, n)
	if !r.read(p) {
		return ""
	}
	return string(p)
}

// Count32 reads a uint32 element count, rejecting values above max (a
// corruption guard applied before any count-sized allocation).
func (r *Reader) Count32(max int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if int64(n) > int64(max) {
		r.Fail(fmt.Errorf("wire: count %d exceeds limit %d", n, max))
		return 0
	}
	return int(n)
}
