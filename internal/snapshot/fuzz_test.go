package snapshot

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzRead guarantees the snapshot parser never panics on untrusted
// bytes: any input either loads cleanly or returns an error. The seed
// corpus covers the interesting structured failures — truncations at
// every framing boundary, flipped CRC and payload bytes, wrong magic,
// future format versions — and the fuzzer mutates from there.
//
// Run the short CI pass with:
//
//	go test -fuzz=FuzzRead -fuzztime=10s -run=^$ ./internal/snapshot
func FuzzRead(f *testing.F) {
	valid := encode(f, testSnapshot(f, 60, 6))
	f.Add(valid)

	// Truncations: mid-magic, mid-header, mid-section-header, mid-payload,
	// just before the ENDS terminator.
	for _, cut := range []int{0, 3, len(Magic), len(Magic) + 6, 24, 30, 36,
		len(valid) / 4, len(valid) / 2, len(valid) - 17, len(valid) - 1} {
		if cut >= 0 && cut <= len(valid) {
			f.Add(valid[:cut])
		}
	}

	// Wrong magic.
	badMagic := append([]byte{}, valid...)
	copy(badMagic, "NOTASNAP")
	f.Add(badMagic)

	// Future format version.
	badVersion := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(badVersion[len(Magic):], Version+7)
	f.Add(badVersion)

	// Flipped CRC byte of the first section (META).
	badCRC := append([]byte{}, valid...)
	badCRC[len(Magic)+4+4+8+1+4+8] ^= 0xff
	f.Add(badCRC)

	// Version-3 header with an unknown precision byte.
	badPrec := append([]byte{}, valid...)
	badPrec[len(Magic)+4+4+8] = 7
	f.Add(badPrec)

	// A float32 store snapshot (valid), and one with its precision byte
	// flipped back to f64 — the store then materialises as float64, which
	// must still parse (the on-disk vectors are float32 either way).
	valid32 := encode(f, testSnapshot32(f, 40, 6))
	f.Add(valid32)
	flipped := append([]byte{}, valid32...)
	flipped[len(Magic)+4+4+8] = 0
	f.Add(flipped)

	// Downgraded version-1 and version-2 artifacts (both valid).
	f.Add(downgrade(f, valid, 1))
	f.Add(downgrade(f, valid, 2))

	// Flipped payload bytes at several depths.
	for _, off := range []int{40, len(valid) / 3, len(valid) / 2, 4 * len(valid) / 5} {
		if off < len(valid) {
			bad := append([]byte{}, valid...)
			bad[off] ^= 0x20
			f.Add(bad)
		}
	}

	// Forged giant section length.
	bigLen := append([]byte{}, valid...)
	binary.LittleEndian.PutUint64(bigLen[25+4:], 1<<50)
	f.Add(bigLen)

	// A snapshot without its index section (still valid).
	noIdx := testSnapshot(f, 30, 6)
	noIdx.Index = nil
	f.Add(encode(f, noIdx))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected, as long as it didn't panic
		}
		// Accepted input must be internally consistent enough to serve.
		if s.Store == nil {
			t.Fatal("accepted snapshot with nil store")
		}
		if s.Store.Dim() != s.Dim {
			t.Fatalf("accepted snapshot with store dim %d != header dim %d", s.Store.Dim(), s.Dim)
		}
		if s.Index != nil && s.Store.ANNIndex() != s.Index {
			t.Fatal("accepted snapshot whose index was not adopted")
		}
		// And re-serialisable: Write(Read(x)) must not fail on accepted x.
		if err := Write(bytes.NewBuffer(nil), s); err != nil {
			t.Fatalf("accepted snapshot fails to re-serialise: %v", err)
		}
	})
}
