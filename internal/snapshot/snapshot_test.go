package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/retrodb/retro/internal/ann"
	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/embed"
)

// testSnapshot builds a store of n clustered vectors (ANN forced on, index
// built) and wraps it in a Snapshot.
func testSnapshot(t testing.TB, n, dim int) *Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	st := embed.NewStore(dim)
	st.EnableANN(1, ann.Params{M: 8, EfConstruction: 60, EfSearch: 40})
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		st.Add(fmt.Sprintf("movies.title\x00value %d", i), v)
	}
	st.WarmANN()
	if st.ANNIndex() == nil {
		t.Fatal("index not built")
	}
	return &Snapshot{
		Dim:          dim,
		Variant:      core.RN,
		Hyperparams:  core.DefaultRN(),
		CreatedUnix:  1_750_000_000,
		LossHistory:  []float64{10.5, 4.25, 2.125},
		Categories:   []string{"movies.title"},
		ANNThreshold: 1,
		ANNParams:    st.ANNParams(),
		Store:        st,
		Index:        st.ANNIndex(),
	}
}

func encode(t testing.TB, s *Snapshot) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	const n, dim = 400, 12
	orig := testSnapshot(t, n, dim)
	got, err := Read(bytes.NewReader(encode(t, orig)))
	if err != nil {
		t.Fatal(err)
	}

	if got.Version != Version || got.Dim != dim {
		t.Fatalf("header: version %d dim %d", got.Version, got.Dim)
	}
	if got.Fingerprint != Fingerprint(dim, core.RN, core.DefaultRN()) {
		t.Fatalf("fingerprint %016x not the configuration hash", got.Fingerprint)
	}
	if got.Variant != orig.Variant || got.Hyperparams != orig.Hyperparams || got.CreatedUnix != orig.CreatedUnix {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if len(got.LossHistory) != 3 || got.LossHistory[1] != 4.25 {
		t.Fatalf("loss history %v", got.LossHistory)
	}
	if len(got.Categories) != 1 || got.Categories[0] != "movies.title" {
		t.Fatalf("categories %v", got.Categories)
	}
	if got.Store.Len() != n || got.Store.Dim() != dim {
		t.Fatalf("store shape %d x %d", got.Store.Len(), got.Store.Dim())
	}
	if got.Store.ANNThreshold() != 1 || got.Store.ANNParams() != orig.ANNParams {
		t.Fatalf("ANN config: threshold %d params %+v", got.Store.ANNThreshold(), got.Store.ANNParams())
	}
	if got.Index == nil || got.Store.ANNIndex() != got.Index {
		t.Fatal("index not deserialised and adopted")
	}

	// Vectors survive exactly at float32 precision, keyed identically.
	for id, word := range orig.Store.Words() {
		gv, ok := got.Store.VectorOf(word)
		if !ok {
			t.Fatalf("key %q missing after load", word)
		}
		for j, v := range orig.Store.Vector(id) {
			if gv[j] != float64(float32(v)) {
				t.Fatalf("key %q dim %d: %g != float32-rounded %g", word, j, gv[j], v)
			}
		}
	}
}

// TestRoundTripTopKIdentical is the serving invariant: the loaded store
// must return the same neighbours in the same order as the original, on
// both the ANN path and the exact path.
func TestRoundTripTopKIdentical(t *testing.T) {
	const n, dim = 400, 12
	orig := testSnapshot(t, n, dim)
	got, err := Read(bytes.NewReader(encode(t, orig)))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for qi := 0; qi < 40; qi++ {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		for _, exact := range []bool{false, true} {
			var want, have []embed.Match
			if exact {
				want = orig.Store.TopKExact(q, 10, nil)
				have = got.Store.TopKExact(q, 10, nil)
			} else {
				want = orig.Store.TopK(q, 10, nil)
				have = got.Store.TopK(q, 10, nil)
			}
			if len(want) != len(have) {
				t.Fatalf("query %d exact=%v: %d vs %d results", qi, exact, len(have), len(want))
			}
			for i := range want {
				if want[i].Word != have[i].Word {
					t.Fatalf("query %d exact=%v rank %d: %q vs %q", qi, exact, i, have[i].Word, want[i].Word)
				}
				if d := want[i].Score - have[i].Score; d > 1e-5 || d < -1e-5 {
					t.Fatalf("query %d exact=%v rank %d: score drift %g", qi, exact, i, d)
				}
			}
		}
	}
}

// TestWriteLoadWriteByteIdentical: serialisation is deterministic and
// lossless over its own output (float32 rounding happens only on the
// first write).
func TestWriteLoadWriteByteIdentical(t *testing.T) {
	orig := testSnapshot(t, 200, 8)
	first := encode(t, orig)
	loaded, err := Read(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	second := encode(t, loaded)
	if !bytes.Equal(first, second) {
		t.Fatalf("write-load-write not byte-identical: %d vs %d bytes", len(first), len(second))
	}
}

func TestNoIndexSnapshot(t *testing.T) {
	s := testSnapshot(t, 50, 8)
	s.Index = nil
	got, err := Read(bytes.NewReader(encode(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != nil {
		t.Fatal("index materialised from nowhere")
	}
	// The store must still answer ANN queries by (re)building lazily.
	if res := got.Store.TopK(got.Store.Vector(0), 5, nil); len(res) != 5 {
		t.Fatalf("TopK after index-less load: %d results", len(res))
	}
	if got.Store.ANNIndex() == nil {
		t.Fatal("lazy build did not kick in above threshold")
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	raw := encode(t, testSnapshot(t, 20, 4))
	raw[0] ^= 0x01
	_, err := Read(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
}

func TestReadRejectsVersionSkew(t *testing.T) {
	raw := encode(t, testSnapshot(t, 20, 4))
	binary.LittleEndian.PutUint32(raw[len(Magic):], Version+1)
	_, err := Read(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew: %v", err)
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	raw := encode(t, testSnapshot(t, 100, 8))
	// Every prefix must fail: a truncated snapshot is never silently
	// accepted as a smaller valid one (the ENDS terminator guarantees it).
	for _, cut := range []int{0, 4, len(Magic) + 2, 30, len(raw) / 3, len(raw) / 2, len(raw) - 30, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d of %d accepted", cut, len(raw))
		}
	}
}

func TestReadRejectsFlippedPayloadByte(t *testing.T) {
	raw := encode(t, testSnapshot(t, 100, 8))
	// Flip one byte in the middle of the file (inside some section
	// payload): the CRC must catch it.
	for _, off := range []int{len(raw) / 4, len(raw) / 2, 3 * len(raw) / 4} {
		bad := append([]byte{}, raw...)
		bad[off] ^= 0x40
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipped byte at %d accepted", off)
		}
	}
}

func TestReadRejectsFlippedCRC(t *testing.T) {
	raw := encode(t, testSnapshot(t, 50, 8))
	// The first section header sits right after the 25-byte file header:
	// tag(4) + len(8) + crc(4). Flip a CRC byte.
	crcOff := len(Magic) + 4 + 4 + 8 + 1 + 4 + 8 // header (version+dim+fp+precision) + tag + len
	bad := append([]byte{}, raw...)
	bad[crcOff] ^= 0xff
	_, err := Read(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("flipped CRC: %v", err)
	}
}

func TestReadRejectsFingerprintMismatch(t *testing.T) {
	raw := encode(t, testSnapshot(t, 20, 4))
	// The fingerprint occupies the last 8 header bytes; flipping it must
	// be caught by the META cross-check.
	off := len(Magic) + 4 + 4
	bad := append([]byte{}, raw...)
	bad[off] ^= 0x01
	_, err := Read(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("fingerprint mismatch: %v", err)
	}
}

func TestExcludesRoundTrip(t *testing.T) {
	s := testSnapshot(t, 30, 6)
	s.ExcludeColumns = []string{"movies.overview", "reviews.text"}
	s.ExcludeRelations = []string{"movies.id->genres.id"}
	got, err := Read(bytes.NewReader(encode(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.ExcludeColumns) != 2 || got.ExcludeColumns[1] != "reviews.text" {
		t.Fatalf("exclude columns %v", got.ExcludeColumns)
	}
	if len(got.ExcludeRelations) != 1 || got.ExcludeRelations[0] != "movies.id->genres.id" {
		t.Fatalf("exclude relations %v", got.ExcludeRelations)
	}
}

// TestReadInfo: the summary path verifies checksums but skips
// materialising the store and graph.
func TestReadInfo(t *testing.T) {
	const n = 150
	orig := testSnapshot(t, n, 8)
	raw := encode(t, orig)
	info, err := ReadInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.Store != nil || info.Index != nil {
		t.Fatal("ReadInfo materialised the store or index")
	}
	if info.NumValues != n || !info.HasIndex {
		t.Fatalf("summary: values %d hasIndex %v", info.NumValues, info.HasIndex)
	}
	if info.Variant != orig.Variant || info.Hyperparams != orig.Hyperparams || info.CreatedUnix != orig.CreatedUnix {
		t.Fatalf("metadata %+v", info)
	}
	// Checksums are still enforced.
	bad := append([]byte{}, raw...)
	bad[2*len(bad)/3] ^= 0x08
	if _, err := ReadInfo(bytes.NewReader(bad)); err == nil {
		t.Fatal("ReadInfo accepted a corrupt snapshot")
	}
	// Full Read reports the same summary fields.
	full, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if full.NumValues != info.NumValues || full.HasIndex != info.HasIndex {
		t.Fatalf("Read/ReadInfo summary skew: %d/%v vs %d/%v",
			full.NumValues, full.HasIndex, info.NumValues, info.HasIndex)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.snap")
	s := testSnapshot(t, 40, 6)
	if err := WriteFileAtomic(path, func(w io.Writer) error { return Write(w, s) }); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := Read(f); err != nil {
		t.Fatalf("atomic write produced unreadable snapshot: %v", err)
	}

	// A failing writer must leave neither the target nor temp litter.
	bad := filepath.Join(dir, "bad.snap")
	if err := WriteFileAtomic(bad, func(w io.Writer) error { return fmt.Errorf("boom") }); err == nil {
		t.Fatal("writer error swallowed")
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatalf("failed write left a file: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "model.snap" {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Fingerprint(32, core.RN, core.DefaultRN())
	if Fingerprint(32, core.RO, core.DefaultRN()) == base {
		t.Fatal("variant not hashed")
	}
	if Fingerprint(33, core.RN, core.DefaultRN()) == base {
		t.Fatal("dim not hashed")
	}
	hp := core.DefaultRN()
	hp.Gamma++
	if Fingerprint(32, core.RN, hp) == base {
		t.Fatal("hyperparams not hashed")
	}
	if Fingerprint(32, core.RN, core.DefaultRN()) != base {
		t.Fatal("fingerprint not deterministic")
	}
}

// --- Quantization sidecar (QNT8, format version 2) --------------------------

// quantSnapshot is testSnapshot with the index SQ8-quantized.
func quantSnapshot(t testing.TB, n, dim int) *Snapshot {
	t.Helper()
	s := testSnapshot(t, n, dim)
	s.Store.EnableQuantization(embed.QuantSQ8, 6)
	s.Store.WarmANN() // reconcile: train + encode
	s.Index = s.Store.ANNIndex()
	if s.Index == nil || !s.Index.Quantized() {
		t.Fatal("index not quantized")
	}
	return s
}

func TestQuantizedRoundTrip(t *testing.T) {
	orig := quantSnapshot(t, 300, 12)
	got, err := Read(bytes.NewReader(encode(t, orig)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != Version {
		t.Fatalf("version %d, want %d", got.Version, Version)
	}
	if got.Quantization != embed.QuantSQ8 || got.Rerank != 6 {
		t.Fatalf("quant meta = (%q, %d), want (sq8, 6)", got.Quantization, got.Rerank)
	}
	if got.Index == nil || !got.Index.Quantized() || got.Index.Rerank() != 6 {
		t.Fatal("index did not come up quantized with its persisted sidecar")
	}
	if mode, rerank := got.Store.Quantization(); mode != embed.QuantSQ8 || rerank != 6 {
		t.Fatalf("store quant state = (%q, %d)", mode, rerank)
	}
	// Quantized queries answer identically to the writing process.
	rng := rand.New(rand.NewSource(6))
	for qi := 0; qi < 25; qi++ {
		q := make([]float64, 12)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		want := orig.Store.TopK(q, 10, nil)
		have := got.Store.TopK(q, 10, nil)
		if len(want) != len(have) {
			t.Fatalf("query %d: %d vs %d results", qi, len(have), len(want))
		}
		for i := range want {
			if want[i].Word != have[i].Word {
				t.Fatalf("query %d rank %d: %q vs %q", qi, i, have[i].Word, want[i].Word)
			}
		}
	}
}

// TestQuantizedWriteLoadWriteByteIdentical is the acceptance bar for the
// QNT8 section: a quantized snapshot re-saved after load reproduces the
// file byte for byte (codes are persisted verbatim, never re-derived
// from the float32-rounded vectors).
func TestQuantizedWriteLoadWriteByteIdentical(t *testing.T) {
	orig := quantSnapshot(t, 250, 10)
	first := encode(t, orig)
	loaded, err := Read(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	second := encode(t, loaded)
	if !bytes.Equal(first, second) {
		t.Fatalf("quantized write-load-write not byte-identical: %d vs %d bytes", len(first), len(second))
	}
}

// downgrade reconstructs the version-1 or version-2 artifact a current
// (version-3, unquantized) file would have been: rewrite the header
// version word, drop the version-3 precision byte, and for version 1
// also strip the two version-2 META fields (quant flag u8 + rerank u32),
// refreshing the META length prefix and CRC.
func downgrade(t testing.TB, raw []byte, version uint32) []byte {
	t.Helper()
	if version != 1 && version != 2 {
		t.Fatalf("downgrade to unknown version %d", version)
	}
	raw = append([]byte(nil), raw...)
	binary.LittleEndian.PutUint32(raw[len(Magic):], version)
	header := len(Magic) + 4 + 4 + 8
	raw = append(raw[:header], raw[header+1:]...) // pre-v3: no precision byte
	if version == 1 {
		frame := header + 4 // past the META tag
		metaLen := int(binary.LittleEndian.Uint64(raw[frame:]))
		payload := raw[frame+12 : frame+12+metaLen]
		v1meta := append(append([]byte(nil), payload[0]), payload[6:]...)
		binary.LittleEndian.PutUint64(raw[frame:], uint64(len(v1meta)))
		binary.LittleEndian.PutUint32(raw[frame+8:], crc32.ChecksumIEEE(v1meta))
		raw = append(raw[:frame+12], append(v1meta, raw[frame+12+metaLen:]...)...)
	}
	return raw
}

// TestCrossVersionReadMatrix: every supported format version loads on
// this build, pre-v3 files come up as float64 stores with quantization
// off, and the vectors — float32 words on disk since version 1 — are
// identical across every (version, store precision) cell.
func TestCrossVersionReadMatrix(t *testing.T) {
	const n, dim = 150, 8
	s := testSnapshot(t, n, dim)
	rawV3 := encode(t, s)

	s32 := testSnapshot32(t, n, dim)
	rawF32 := encode(t, s32)

	cells := []struct {
		name    string
		raw     []byte
		version uint32
		prec    embed.Precision
	}{
		{"v1-f64", downgrade(t, rawV3, 1), 1, embed.F64},
		{"v2-f64", downgrade(t, rawV3, 2), 2, embed.F64},
		{"v3-f64", rawV3, 3, embed.F64},
		{"v3-f32", rawF32, 3, embed.F32},
	}
	for _, cell := range cells {
		t.Run(cell.name, func(t *testing.T) {
			got, err := Read(bytes.NewReader(cell.raw))
			if err != nil {
				t.Fatalf("%s rejected: %v", cell.name, err)
			}
			if got.Version != cell.version {
				t.Fatalf("version %d, want %d", got.Version, cell.version)
			}
			if got.Precision != cell.prec || got.Store.Precision() != cell.prec {
				t.Fatalf("precision %v/%v, want %v", got.Precision, got.Store.Precision(), cell.prec)
			}
			if got.Quantization != embed.QuantOff || got.Rerank != 0 {
				t.Fatalf("quant meta = (%q, %d), want (off, 0)", got.Quantization, got.Rerank)
			}
			// Vectors survive bit-exactly at float32 precision in every cell.
			for id, word := range s.Store.Words() {
				gv, ok := got.Store.VectorOf(word)
				if !ok {
					t.Fatalf("key %q missing", word)
				}
				for j, v := range s.Store.Vector(id) {
					if gv[j] != float64(float32(v)) {
						t.Fatalf("key %q dim %d: %g != %g", word, j, gv[j], float64(float32(v)))
					}
				}
			}
			// Codes rebuilt on demand: enable quantization post-load.
			got.Store.EnableQuantization(embed.QuantSQ8, 0)
			got.Store.WarmANN()
			if idx := got.Store.ANNIndex(); idx == nil || !idx.Quantized() {
				t.Fatal("post-load quantization did not rebuild codes")
			}
			if res := got.Store.TopK(got.Store.Vector(3), 5, nil); len(res) != 5 {
				t.Fatalf("quantized TopK on loaded store: %d results", len(res))
			}
		})
	}
}

// testSnapshot32 is testSnapshot over a float32 store (same seed, same
// data: every vector is float32-representable after the store rounds
// it, so the two stores serialise identical float32 words).
func testSnapshot32(t testing.TB, n, dim int) *Snapshot {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	st := embed.NewStoreWithPrecision(dim, embed.F32)
	st.EnableANN(1, ann.Params{M: 8, EfConstruction: 60, EfSearch: 40})
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		st.Add(fmt.Sprintf("movies.title\x00value %d", i), v)
	}
	st.WarmANN()
	if st.ANNIndex() == nil {
		t.Fatal("index not built")
	}
	return &Snapshot{
		Dim:          dim,
		Variant:      core.RN,
		Hyperparams:  core.DefaultRN(),
		CreatedUnix:  1_750_000_000,
		LossHistory:  []float64{10.5, 4.25, 2.125},
		Categories:   []string{"movies.title"},
		ANNThreshold: 1,
		ANNParams:    st.ANNParams(),
		Store:        st,
		Index:        st.ANNIndex(),
	}
}

// TestF32SnapshotRoundTrip: a float32 store snapshot reboots as float32,
// answers identically, and re-saves byte-identically.
func TestF32SnapshotRoundTrip(t *testing.T) {
	const n, dim = 250, 10
	orig := testSnapshot32(t, n, dim)
	orig.Store.EnableQuantization(embed.QuantSQ8, 4)
	orig.Store.WarmANN()
	orig.Index = orig.Store.ANNIndex()
	first := encode(t, orig)
	got, err := Read(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if got.Precision != embed.F32 || got.Store.Precision() != embed.F32 {
		t.Fatalf("precision %v/%v, want F32", got.Precision, got.Store.Precision())
	}
	if got.Index == nil || !got.Index.F32() || !got.Index.Quantized() {
		t.Fatal("index not materialised as quantized float32")
	}
	rng := rand.New(rand.NewSource(9))
	for qi := 0; qi < 25; qi++ {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		want := orig.Store.TopK(q, 10, nil)
		have := got.Store.TopK(q, 10, nil)
		if len(want) != len(have) {
			t.Fatalf("query %d: %d vs %d results", qi, len(have), len(want))
		}
		for i := range want {
			if want[i].Word != have[i].Word {
				t.Fatalf("query %d rank %d: %q vs %q", qi, i, have[i].Word, want[i].Word)
			}
		}
	}
	second := encode(t, got)
	if !bytes.Equal(first, second) {
		t.Fatalf("f32 write-load-write not byte-identical: %d vs %d bytes", len(first), len(second))
	}
}

func TestReadInfoReportsQuantization(t *testing.T) {
	raw := encode(t, quantSnapshot(t, 120, 8))
	info, err := ReadInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.Quantization != embed.QuantSQ8 || info.Rerank != 6 {
		t.Fatalf("ReadInfo quant = (%q, %d), want (sq8, 6)", info.Quantization, info.Rerank)
	}
	if info.Store != nil || info.Index != nil {
		t.Fatal("ReadInfo materialised store or index")
	}

	plain, err := ReadInfo(bytes.NewReader(encode(t, testSnapshot(t, 50, 8))))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Quantization != embed.QuantOff {
		t.Fatalf("unquantized ReadInfo mode = %q", plain.Quantization)
	}
}

// TestQuantSidecarCorruption: a flipped byte inside the QNT8 payload
// trips the section CRC, and a sidecar frame for the wrong graph is
// rejected by the structural check.
func TestQuantSidecarCorruption(t *testing.T) {
	raw := encode(t, quantSnapshot(t, 100, 8))
	idx := bytes.Index(raw, []byte(tagQnt8))
	if idx < 0 {
		t.Fatal("no QNT8 section in quantized snapshot")
	}
	// Flip a byte well inside the payload (past tag+len+crc = 16 bytes).
	corrupt := append([]byte(nil), raw...)
	corrupt[idx+40] ^= 0x10
	if _, err := Read(bytes.NewReader(corrupt)); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("QNT8 payload corruption: %v", err)
	}
}

// TestQuantConfigSurvivesIndexlessSnapshot: a snapshot written while the
// index was stale (no HNSW/QNT8 sections possible) must still persist
// the CONFIGURED quantization in META, so the loading process
// re-quantizes on its next index build instead of silently serving
// unquantized.
func TestQuantConfigSurvivesIndexlessSnapshot(t *testing.T) {
	s := testSnapshot(t, 150, 8)
	s.Index = nil // as when Store.ANNIndex() returns nil on a stale index
	s.Quantization = embed.QuantSQ8
	s.Rerank = 5
	got, err := Read(bytes.NewReader(encode(t, s)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Quantization != embed.QuantSQ8 || got.Rerank != 5 {
		t.Fatalf("quant config = (%q, %d), want (sq8, 5)", got.Quantization, got.Rerank)
	}
	if mode, rerank := got.Store.Quantization(); mode != embed.QuantSQ8 || rerank != 5 {
		t.Fatalf("store quant config = (%q, %d), want (sq8, 5)", mode, rerank)
	}
	got.Store.WarmANN() // lazy rebuild must come up quantized
	if idx := got.Store.ANNIndex(); idx == nil || !idx.Quantized() || idx.Rerank() != 5 {
		t.Fatal("rebuilt index did not re-quantize from the persisted configuration")
	}
}
