// Package snapshot persists a trained RETRO session as a single versioned
// binary artifact, so a serving process can cold-start in milliseconds by
// loading state instead of re-running retrofitting and rebuilding the
// HNSW index (the paper's amortise-once model: retrofit once in the
// database, reuse the embeddings across every downstream query).
//
// Layout (all integers little-endian):
//
//	header   magic "RETROSNP" | version u32 | dim u32 | fingerprint u64 | precision u8 (v3+)
//	section  tag [4]byte | payload length u64 | payload CRC32 (IEEE) u32 | payload
//	...      META (required), STOR (required), HNSW (optional), ENDS (terminator)
//
// Every section payload is CRC32-checksummed; truncations, bit flips and
// version skew are reported as errors, never panics. The fingerprint in
// the header is a hash of dimensionality, solver variant and
// hyperparameters, letting operators tell at a glance whether two
// snapshots came from the same training configuration.
//
// META carries the training provenance (variant, hyperparameters, loss
// history, creation time, category names = "table.column" text keys) and
// the ANN configuration. STOR is the retrofitted embedding store —
// value keys plus float32-packed vectors. HNSW, when present, is the
// fully built graph (see ann.Index.WriteTo); loading it makes the first
// query as cheap as on the process that trained the model.
package snapshot

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"

	"github.com/retrodb/retro/internal/ann"
	"github.com/retrodb/retro/internal/core"
	"github.com/retrodb/retro/internal/embed"
	"github.com/retrodb/retro/internal/wire"
)

// Magic starts every snapshot file.
const Magic = "RETROSNP"

// Version is the current format version. Version 2 added the optional
// QNT8 section (SQ8 quantization sidecar: trained per-dimension ranges
// plus every node's codes). Version 3 added a store-precision byte to
// the header, so a float32 serving store reboots as float32 instead of
// silently widening. Readers accept MinVersion..Version: a version-1
// snapshot simply has no QNT8 section, so a process that wants
// quantization retrains the codes from the loaded vectors, and a
// pre-version-3 snapshot has no precision byte and loads as float64 —
// old snapshots stay bootable either way. Vectors have been packed as
// float32 on disk since version 1, so cross-precision loads are
// lossless in both directions. Writers always emit the current Version.
const Version = 3

// MinVersion is the oldest format version this build still reads.
const MinVersion = 1

const (
	tagMeta = "META"
	tagStor = "STOR"
	tagHNSW = "HNSW"
	tagQnt8 = "QNT8"
	tagEnds = "ENDS"

	maxSectionLen = int64(1) << 36 // 64 GiB: far above any real snapshot
	maxValues     = 1 << 28
	maxKeyLen     = 1 << 20
	maxLossLen    = 1 << 20
	maxCategories = 1 << 20
	maxNameLen    = 1 << 16
	maxDim        = 1 << 16
)

// Snapshot is the in-memory form of a persisted session: everything a
// serving process needs to answer queries without retraining.
type Snapshot struct {
	// Version is the format version (filled by Read; Write always emits
	// the current Version).
	Version uint32
	// Fingerprint hashes dim, variant and hyperparameters (filled by
	// Read; Write recomputes it).
	Fingerprint uint64
	// Dim is the embedding dimensionality.
	Dim int
	// Precision is the store's vector representation (version-3 header
	// byte; pre-v3 snapshots load as embed.F64). On Write it is taken
	// from the attached Store, not from this field.
	Precision embed.Precision
	// Variant is the solver that produced the vectors.
	Variant core.Variant
	// Hyperparams is the training configuration of §4.4.
	Hyperparams core.Hyperparams
	// CreatedUnix is the training wall-clock time (Unix seconds).
	CreatedUnix int64
	// LossHistory is Ψ(W) per iteration when tracking was enabled.
	LossHistory []float64
	// Categories lists the "table.column" text keys the model covers.
	Categories []string
	// ExcludeColumns / ExcludeRelations are the extraction options the
	// model was trained with; resuming against a database must re-extract
	// with the same exclusions or the vocabularies cannot match.
	ExcludeColumns   []string
	ExcludeRelations []string
	// ANNThreshold is the store's approximate-search threshold (0 when
	// ANN is disabled).
	ANNThreshold int
	// ANNParams is the HNSW configuration.
	ANNParams ann.Params
	// Quantization is the CONFIGURED ANN candidate-generation mode and
	// Rerank its candidate over-fetch factor. Both are persisted in the
	// version-2 META section (like ANNThreshold/ANNParams), so the
	// configuration survives even when the snapshot was written while the
	// index was stale and no HNSW/QNT8 section could be emitted — the
	// loading process re-quantizes lazily in that case instead of
	// silently serving unquantized. The QNT8 sidecar additionally carries
	// the trained ranges and codes when a quantized index was present.
	// Filled by both Read and ReadInfo.
	Quantization string
	Rerank       int
	// Store holds the retrofitted vectors keyed "table.column\x00text".
	// After Read it has the ANN configuration applied and, when the
	// snapshot carried a graph, the deserialised index adopted. Nil after
	// ReadInfo.
	Store *embed.Store
	// Index is the deserialised HNSW graph (nil when the snapshot was
	// written before the index was built). It is already adopted by
	// Store; the field exists for introspection. Nil after ReadInfo.
	Index *ann.Index
	// NumValues and HasIndex summarise the store and graph sections; they
	// are filled by both Read and ReadInfo (and ignored by Write, which
	// derives them from Store/Index).
	NumValues int
	HasIndex  bool
}

// Fingerprint hashes the training configuration (dimensionality, solver
// variant, hyperparameters) into the value stored in the header.
func Fingerprint(dim int, variant core.Variant, hp core.Hyperparams) uint64 {
	h := fnv.New64a()
	ww := wire.NewWriter(h)
	ww.Bytes([]byte("retro-snapshot-fp1"))
	ww.U32(uint32(dim))
	ww.U8(uint8(variant))
	ww.F64(hp.Alpha)
	ww.F64(hp.Beta)
	ww.F64(hp.Gamma)
	ww.F64(hp.Delta)
	ww.U32(uint32(hp.Iterations))
	_ = ww.Flush()
	return h.Sum64()
}

// Write serialises s. The store must be non-nil; the index section is
// included only when s.Index is non-nil.
func Write(w io.Writer, s *Snapshot) error {
	if s.Store == nil {
		return fmt.Errorf("snapshot: nil store")
	}
	if s.Dim != s.Store.Dim() {
		return fmt.Errorf("snapshot: dim %d does not match store dim %d", s.Dim, s.Store.Dim())
	}
	// META carries the CONFIGURED quantization; when a quantized index is
	// attached, its actual state is authoritative so the two sections can
	// never disagree.
	if s.Index != nil && s.Index.Quantized() {
		s.Quantization = embed.QuantSQ8
		s.Rerank = s.Index.Rerank()
	}
	s.Precision = s.Store.Precision()
	ww := wire.NewWriter(w)
	ww.Bytes([]byte(Magic))
	ww.U32(Version)
	ww.U32(uint32(s.Dim))
	ww.U64(Fingerprint(s.Dim, s.Variant, s.Hyperparams))
	ww.U8(uint8(s.Precision))

	writeSection(ww, tagMeta, encodeMeta(s))
	writeSection(ww, tagStor, encodeStore(s.Store))
	if s.Index != nil {
		var buf bytes.Buffer
		if _, err := s.Index.WriteTo(&buf); err != nil {
			return fmt.Errorf("snapshot: serialising index: %w", err)
		}
		writeSection(ww, tagHNSW, buf.Bytes())
		if s.Index.Quantized() {
			// The quant sidecar is slot-aligned with the HNSW section just
			// written, and persists the codes verbatim so a re-saved
			// snapshot is byte-identical (re-encoding from the
			// float32-rounded vectors could flip rounding ties).
			var qbuf bytes.Buffer
			if _, err := s.Index.WriteQuantTo(&qbuf); err != nil {
				return fmt.Errorf("snapshot: serialising quant sidecar: %w", err)
			}
			writeSection(ww, tagQnt8, qbuf.Bytes())
		}
	}
	writeSection(ww, tagEnds, nil)
	return ww.Flush()
}

func writeSection(ww *wire.Writer, tag string, payload []byte) {
	ww.Bytes([]byte(tag))
	ww.U64(uint64(len(payload)))
	ww.U32(crc32.ChecksumIEEE(payload))
	ww.Bytes(payload)
}

func encodeMeta(s *Snapshot) []byte {
	var buf bytes.Buffer
	ww := wire.NewWriter(&buf)
	ww.U8(uint8(s.Variant))
	// Version-2 addition, read back conditionally on the header version:
	// the configured quantization mode and re-rank depth. Kept at the
	// front (right after the variant byte) so the growth point of the
	// META layout is fixed rather than trailing unbounded lists.
	if s.Quantization == embed.QuantSQ8 {
		ww.U8(1)
	} else {
		ww.U8(0)
	}
	ww.U32(uint32(s.Rerank))
	ww.F64(s.Hyperparams.Alpha)
	ww.F64(s.Hyperparams.Beta)
	ww.F64(s.Hyperparams.Gamma)
	ww.F64(s.Hyperparams.Delta)
	ww.U32(uint32(s.Hyperparams.Iterations))
	ww.I64(s.CreatedUnix)
	ww.I64(int64(s.ANNThreshold))
	ww.U32(uint32(s.ANNParams.M))
	ww.U32(uint32(s.ANNParams.EfConstruction))
	ww.U32(uint32(s.ANNParams.EfSearch))
	ww.I64(s.ANNParams.Seed)
	ww.U32(uint32(len(s.LossHistory)))
	for _, v := range s.LossHistory {
		ww.F64(v)
	}
	ww.U32(uint32(len(s.Categories)))
	for _, c := range s.Categories {
		ww.String(c)
	}
	ww.U32(uint32(len(s.ExcludeColumns)))
	for _, c := range s.ExcludeColumns {
		ww.String(c)
	}
	ww.U32(uint32(len(s.ExcludeRelations)))
	for _, c := range s.ExcludeRelations {
		ww.String(c)
	}
	_ = ww.Flush()
	return buf.Bytes()
}

func encodeStore(st *embed.Store) []byte {
	var buf bytes.Buffer
	ww := wire.NewWriter(&buf)
	ww.U32(uint32(st.Dim()))
	words := st.Words()
	ww.U32(uint32(len(words)))
	for id, word := range words {
		ww.String(word)
		for _, v := range st.Vector(id) {
			ww.F32(float32(v))
		}
	}
	_ = ww.Flush()
	return buf.Bytes()
}

// Read parses a snapshot written by Write. It validates the magic, the
// format version, every section checksum and all structural bounds, and
// returns an error — never panics — on malformed input. The returned
// snapshot's store has the ANN configuration applied and any serialised
// index adopted, so it is immediately servable.
func Read(r io.Reader) (*Snapshot, error) { return read(r, true) }

// ReadInfo parses the header and metadata and verifies every section
// checksum, but skips materialising the store and the HNSW graph — the
// expensive parts — so introspection stays cheap on arbitrarily large
// snapshots. Store and Index are nil on the result; NumValues and
// HasIndex are filled from the section frames.
func ReadInfo(r io.Reader) (*Snapshot, error) { return read(r, false) }

func read(r io.Reader, full bool) (*Snapshot, error) {
	rr := wire.NewReader(r)
	magic := make([]byte, len(Magic))
	rr.Bytes(magic)
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("snapshot: bad magic %q (not a retro snapshot)", magic)
	}
	version := rr.U32()
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: reading version: %w", err)
	}
	if version < MinVersion || version > Version {
		return nil, fmt.Errorf("snapshot: format version %d not supported (this build reads versions %d-%d)", version, MinVersion, Version)
	}
	dim := int(rr.U32())
	fingerprint := rr.U64()
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: reading header: %w", err)
	}
	if dim <= 0 || dim > maxDim {
		return nil, fmt.Errorf("snapshot: implausible dimension %d", dim)
	}
	precision := embed.F64
	if version >= 3 {
		p := rr.U8()
		if err := rr.Err(); err != nil {
			return nil, fmt.Errorf("snapshot: reading precision: %w", err)
		}
		if p > uint8(embed.F32) {
			return nil, fmt.Errorf("snapshot: unknown store precision %d", p)
		}
		precision = embed.Precision(p)
	}

	s := &Snapshot{Version: version, Fingerprint: fingerprint, Dim: dim, Precision: precision}
	var sawMeta, sawStor, sawEnds bool
	for !sawEnds {
		tag := make([]byte, 4)
		rr.Bytes(tag)
		length := rr.U64()
		sum := rr.U32()
		if err := rr.Err(); err != nil {
			return nil, fmt.Errorf("snapshot: reading section header: %w", err)
		}
		if int64(length) < 0 || int64(length) > maxSectionLen {
			return nil, fmt.Errorf("snapshot: section %q has implausible length %d", tag, length)
		}
		payload, err := readPayload(rr, int64(length))
		if err != nil {
			return nil, fmt.Errorf("snapshot: section %q: %w", tag, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, fmt.Errorf("snapshot: section %q checksum mismatch (stored %08x, computed %08x): file is corrupt", tag, sum, got)
		}
		switch string(tag) {
		case tagMeta:
			if err := decodeMeta(payload, s, version); err != nil {
				return nil, err
			}
			sawMeta = true
		case tagStor:
			if full {
				st, err := decodeStore(payload, dim, precision)
				if err != nil {
					return nil, err
				}
				s.Store = st
				s.NumValues = st.Len()
			} else {
				n, err := decodeStoreHeader(payload, dim)
				if err != nil {
					return nil, err
				}
				s.NumValues = n
			}
			sawStor = true
		case tagHNSW:
			s.HasIndex = true
			if full {
				// Graph vectors are float32-packed on disk regardless of the
				// store precision; materialise the index in the store's
				// representation so traversal and the store agree.
				readGraph := ann.Read
				if precision == embed.F32 {
					readGraph = ann.Read32
				}
				idx, err := readGraph(bytes.NewReader(payload))
				if err != nil {
					return nil, fmt.Errorf("snapshot: %w", err)
				}
				if idx.Dim() != dim {
					return nil, fmt.Errorf("snapshot: index dim %d does not match snapshot dim %d", idx.Dim(), dim)
				}
				s.Index = idx
			}
		case tagQnt8:
			// Writers emit QNT8 directly after HNSW (the sidecar is
			// slot-aligned with that graph), so the index is already
			// materialised here on the full-read path.
			if full {
				if s.Index == nil {
					return nil, fmt.Errorf("snapshot: quant sidecar without a preceding index section")
				}
				if err := s.Index.ReadQuantInto(bytes.NewReader(payload)); err != nil {
					return nil, fmt.Errorf("snapshot: %w", err)
				}
				s.Quantization = embed.QuantSQ8
				s.Rerank = s.Index.Rerank()
			} else {
				qdim, rerank, err := ann.ReadQuantHeader(bytes.NewReader(payload))
				if err != nil {
					return nil, fmt.Errorf("snapshot: %w", err)
				}
				if qdim != dim {
					return nil, fmt.Errorf("snapshot: quant sidecar dim %d does not match snapshot dim %d", qdim, dim)
				}
				s.Quantization = embed.QuantSQ8
				s.Rerank = rerank
			}
		case tagEnds:
			sawEnds = true
		default:
			// Unknown sections from same-version writers are skipped for
			// forward compatibility (their checksum was still verified).
		}
	}
	if !sawMeta || !sawStor {
		return nil, fmt.Errorf("snapshot: missing required section (META present: %v, STOR present: %v)", sawMeta, sawStor)
	}
	if want := Fingerprint(dim, s.Variant, s.Hyperparams); want != fingerprint {
		return nil, fmt.Errorf("snapshot: hyperparameter fingerprint mismatch (header %016x, metadata %016x): file is corrupt", fingerprint, want)
	}
	if s.Quantization == "" {
		s.Quantization = embed.QuantOff
	}
	if !full {
		return s, nil
	}

	// Project the persisted ANN configuration onto the store, then adopt
	// the deserialised graph so no rebuild is needed. AdoptANN takes the
	// quantization state from the index itself, so a QNT8-carrying
	// snapshot comes up quantized with its persisted codes.
	if s.ANNThreshold > 0 {
		s.Store.EnableANN(s.ANNThreshold, s.ANNParams)
	} else {
		s.Store.DisableANN()
	}
	if s.Index != nil {
		if err := s.Store.AdoptANN(s.Index); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	if s.Quantization == embed.QuantSQ8 && (s.Index == nil || !s.Index.Quantized()) {
		// The snapshot was configured for SQ8 but carried no quantized
		// graph (written while the index was stale, or before the lazy
		// reconcile ran): restore the configuration so the loading
		// process re-quantizes on its next build instead of silently
		// serving unquantized.
		s.Store.EnableQuantization(embed.QuantSQ8, s.Rerank)
	}
	return s, nil
}

// WriteFileAtomic persists a snapshot produced by write to path via a
// same-directory temp file, fsync and rename, so a crash or disk-full
// mid-write never leaves a truncated file where a boot path expects a
// valid snapshot.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := write(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("writing snapshot: %w", err)
	}
	// Data blocks must be durable before the rename becomes visible, or a
	// power loss could persist the new name pointing at lost data.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		// Best effort: fsync the directory so the rename itself survives
		// a crash (not supported on every platform/filesystem).
		_ = dir.Sync()
		dir.Close()
	}
	return nil
}

// readPayload reads exactly n bytes, growing the buffer incrementally so
// a forged huge length cannot force a single giant allocation before the
// (truncated) input runs dry.
func readPayload(rr *wire.Reader, n int64) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min64(n, chunk))
	for int64(len(buf)) < n {
		step := min64(n-int64(len(buf)), chunk)
		start := int64(len(buf))
		buf = append(buf, make([]byte, step)...)
		rr.Bytes(buf[start : start+step])
		if err := rr.Err(); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func decodeMeta(payload []byte, s *Snapshot, version uint32) error {
	rr := wire.NewReader(bytes.NewReader(payload))
	s.Variant = core.Variant(rr.U8())
	if version >= 2 {
		if rr.U8() != 0 {
			s.Quantization = embed.QuantSQ8
		}
		s.Rerank = int(rr.U32())
		if s.Rerank < 0 || s.Rerank > 1<<16 {
			return fmt.Errorf("snapshot: implausible rerank factor %d", s.Rerank)
		}
	}
	s.Hyperparams.Alpha = rr.F64()
	s.Hyperparams.Beta = rr.F64()
	s.Hyperparams.Gamma = rr.F64()
	s.Hyperparams.Delta = rr.F64()
	s.Hyperparams.Iterations = int(rr.U32())
	s.CreatedUnix = rr.I64()
	s.ANNThreshold = int(rr.I64())
	s.ANNParams.M = int(rr.U32())
	s.ANNParams.EfConstruction = int(rr.U32())
	s.ANNParams.EfSearch = int(rr.U32())
	s.ANNParams.Seed = rr.I64()
	lossLen := rr.Count32(maxLossLen)
	if rr.Err() == nil && lossLen > 0 {
		s.LossHistory = make([]float64, lossLen)
		for i := range s.LossHistory {
			s.LossHistory[i] = rr.F64()
		}
	}
	s.Categories = decodeStringList(rr)
	s.ExcludeColumns = decodeStringList(rr)
	s.ExcludeRelations = decodeStringList(rr)
	if err := rr.Err(); err != nil {
		return fmt.Errorf("snapshot: decoding metadata: %w", err)
	}
	if s.Variant != core.RO && s.Variant != core.RN {
		return fmt.Errorf("snapshot: unknown solver variant %d", s.Variant)
	}
	return nil
}

func decodeStringList(rr *wire.Reader) []string {
	n := rr.Count32(maxCategories)
	if rr.Err() != nil || n == 0 {
		return nil
	}
	out := make([]string, 0, min(n, 1<<12))
	for i := 0; i < n; i++ {
		out = append(out, rr.String(maxNameLen))
	}
	return out
}

// decodeStoreHeader reads only the dim and entry count off a STOR
// payload (for ReadInfo).
func decodeStoreHeader(payload []byte, dim int) (int, error) {
	rr := wire.NewReader(bytes.NewReader(payload))
	storDim := int(rr.U32())
	if rr.Err() == nil && storDim != dim {
		return 0, fmt.Errorf("snapshot: store dim %d does not match header dim %d", storDim, dim)
	}
	count := rr.Count32(maxValues)
	if err := rr.Err(); err != nil {
		return 0, fmt.Errorf("snapshot: decoding store: %w", err)
	}
	return count, nil
}

func decodeStore(payload []byte, dim int, precision embed.Precision) (*embed.Store, error) {
	rr := wire.NewReader(bytes.NewReader(payload))
	storDim := int(rr.U32())
	if rr.Err() == nil && storDim != dim {
		return nil, fmt.Errorf("snapshot: store dim %d does not match header dim %d", storDim, dim)
	}
	count := rr.Count32(maxValues)
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("snapshot: decoding store: %w", err)
	}
	// Vectors are float32 words on disk, so materialising into an F32
	// store round-trips bit-exactly (the widen-then-narrow through the
	// float64 Add boundary is the identity on float32 values).
	st := embed.NewStoreWithPrecision(dim, precision)
	vecBuf := make([]float64, dim)
	for i := 0; i < count; i++ {
		key := rr.String(maxKeyLen)
		for j := range vecBuf {
			vecBuf[j] = float64(rr.F32())
		}
		if err := rr.Err(); err != nil {
			return nil, fmt.Errorf("snapshot: store entry %d: %w", i, err)
		}
		st.Add(key, vecBuf)
	}
	if st.Len() != count {
		return nil, fmt.Errorf("snapshot: store has %d duplicate keys", count-st.Len())
	}
	return st, nil
}
