// Package extract implements §3.2–3.3 of the paper: it pulls every unique
// text value out of a relational database together with its categorial
// connection (which column it lives in) and its relational connections to
// other text values (row-wise, primary-key/foreign-key, and many-to-many
// via link tables).
package extract

import (
	"fmt"
	"sort"
	"strings"

	"github.com/retrodb/retro/internal/reldb"
)

// RelKind labels how a relation group was derived (§3.2 a/b/c).
type RelKind uint8

const (
	// RowWise connects two text columns of the same table, row by row.
	RowWise RelKind = iota
	// PKFK connects text columns of two tables joined by a foreign key.
	PKFK
	// ManyToMany connects text columns of two tables joined by a link table.
	ManyToMany
)

func (k RelKind) String() string {
	switch k {
	case RowWise:
		return "row-wise"
	case PKFK:
		return "pk-fk"
	case ManyToMany:
		return "n:m"
	default:
		return fmt.Sprintf("RelKind(%d)", uint8(k))
	}
}

// TextValue is one embedded entity: a distinct text value within one
// column (§3.3: the same string in two different columns yields two
// TextValues; within one column it yields one).
type TextValue struct {
	ID       int
	Text     string
	Category int // index into Extraction.Categories
}

// Category is a text column; every member TextValue shares it (§3.2
// "categorial connections").
type Category struct {
	ID      int
	Table   string
	Column  string
	Members []int // TextValue ids, ascending
}

// Name returns the qualified "table.column" name.
func (c Category) Name() string { return c.Table + "." + c.Column }

// Edge is a directed relation instance between two TextValues.
type Edge struct{ From, To int }

// RelationGroup is one E_r of the paper: all edges of one relationship
// between a source and a target category. The inverse group E_r̄ is not
// materialised; solvers derive it from the forward edges.
type RelationGroup struct {
	ID             int
	Kind           RelKind
	Name           string // e.g. "movies.title->persons.name"
	SourceCategory int
	TargetCategory int
	// Edges is deduplicated; FromDB emits it sorted by (From, To), and
	// incremental extraction appends newer edges at the tail (sorting in
	// place would cost O(|E_r|) per insert). No consumer relies on order.
	Edges []Edge

	// Via disambiguates groups that share a Name: for PKFK groups it is
	// the qualified FK column ("movies.director_id"), for n:m groups the
	// link table name, and empty for row-wise groups. Two FK columns from
	// the same source to the same target (director_id and producer_id,
	// say) yield two groups with equal Names but distinct Vias, and
	// incremental extraction routes delta edges by (Kind, Name, Via).
	Via string
}

// Extraction is the §3.2 output: the text value registry plus categorial
// and relational connections. It is the input to graph generation (§3.4)
// and to the retrofitting problem (§4.2).
type Extraction struct {
	Values     []TextValue
	Categories []Category
	Relations  []RelationGroup

	valueIndex map[valueKey]int
	catIndex   map[string]int
	relIndex   map[relKey]int
	// edgeSets dedups delta appends in O(1) per edge; built lazily per
	// group on the first ApplyInserts that touches it.
	edgeSets map[int]map[Edge]struct{}
}

type valueKey struct {
	category int
	text     string
}

// relKey is the identity of a relation group; see RelationGroup.Via.
type relKey struct {
	kind RelKind
	name string
	via  string
}

// Options tunes extraction.
type Options struct {
	// ExcludeColumns removes "table.column" text columns entirely: no
	// category, no values, no relations touching them. Used by the
	// imputation experiments which train embeddings with the target
	// column hidden.
	ExcludeColumns []string
	// ExcludeRelations removes relation groups whose Name matches (both
	// directions checked). Used by the link prediction experiment.
	ExcludeRelations []string
	// MaxValueLength truncates extremely long text values (0 = keep all).
	MaxValueLength int
}

func (o Options) excludedColumn(table, column string) bool {
	qual := table + "." + column
	for _, e := range o.ExcludeColumns {
		if strings.EqualFold(e, qual) {
			return true
		}
	}
	return false
}

func (o Options) excludedRelation(name string) bool {
	for _, e := range o.ExcludeRelations {
		if strings.EqualFold(e, name) || strings.EqualFold(reverseName(e), name) {
			return true
		}
	}
	return false
}

func reverseName(name string) string {
	parts := strings.Split(name, "->")
	if len(parts) != 2 {
		return name
	}
	return parts[1] + "->" + parts[0]
}

// FromDB runs the full §3.2 extraction over a database.
func FromDB(db *reldb.DB, opts Options) (*Extraction, error) {
	ex := &Extraction{
		valueIndex: make(map[valueKey]int),
		catIndex:   make(map[string]int),
		relIndex:   make(map[relKey]int),
	}

	// Pass 1: categories and text values (column order is deterministic).
	for _, t := range db.Tables() {
		for _, ci := range t.TextColumns() {
			if opts.excludedColumn(t.Name, t.Columns[ci].Name) {
				continue
			}
			cat := ex.ensureCategory(t.Name, t.Columns[ci].Name)
			t.Scan(func(_ int, row []reldb.Value) bool {
				if s, ok := row[ci].AsText(); ok {
					ex.ensureValue(cat, clip(s, opts.MaxValueLength))
				}
				return true
			})
		}
	}

	// Pass 2a: row-wise relationships between text column pairs.
	for _, t := range db.Tables() {
		cols := ex.activeTextColumns(t, opts)
		for a := 0; a < len(cols); a++ {
			for b := a + 1; b < len(cols); b++ {
				ex.addRowWise(t, cols[a], cols[b], opts)
			}
		}
	}

	// Pass 2b: PK-FK relationships. For each FK S.fk -> T.pk connect every
	// text column of S with every text column of T.
	for _, s := range db.Tables() {
		if s.IsLinkTable() {
			continue // handled as n:m below
		}
		for _, fkCol := range s.ForeignKeyColumns() {
			fk := s.Columns[fkCol].FK
			target, ok := db.Table(fk.Table)
			if !ok {
				return nil, fmt.Errorf("extract: FK to unknown table %q", fk.Table)
			}
			ex.addPKFK(db, s, fkCol, target, opts)
		}
	}

	// Pass 2c: many-to-many relationships via link tables.
	for _, link := range db.LinkTables() {
		fks := link.ForeignKeyColumns()
		s, _ := db.Table(link.Columns[fks[0]].FK.Table)
		t, _ := db.Table(link.Columns[fks[1]].FK.Table)
		ex.addManyToMany(link, fks[0], fks[1], s, t, opts)
	}

	ex.finalize()
	return ex, nil
}

func clip(s string, max int) string {
	if max > 0 && len(s) > max {
		return s[:max]
	}
	return s
}

func (ex *Extraction) activeTextColumns(t *reldb.Table, opts Options) []int {
	var out []int
	for _, ci := range t.TextColumns() {
		if !opts.excludedColumn(t.Name, t.Columns[ci].Name) {
			out = append(out, ci)
		}
	}
	return out
}

func (ex *Extraction) ensureCategory(table, column string) int {
	key := table + "." + column
	if id, ok := ex.catIndex[key]; ok {
		return id
	}
	id := len(ex.Categories)
	ex.Categories = append(ex.Categories, Category{ID: id, Table: table, Column: column})
	ex.catIndex[key] = id
	return id
}

func (ex *Extraction) ensureValue(category int, text string) int {
	key := valueKey{category, text}
	if id, ok := ex.valueIndex[key]; ok {
		return id
	}
	id := len(ex.Values)
	ex.Values = append(ex.Values, TextValue{ID: id, Text: text, Category: category})
	ex.valueIndex[key] = id
	ex.Categories[category].Members = append(ex.Categories[category].Members, id)
	return id
}

// Lookup returns the id of a text value within a category.
func (ex *Extraction) Lookup(table, column, text string) (int, bool) {
	cat, ok := ex.catIndex[table+"."+column]
	if !ok {
		return 0, false
	}
	id, ok := ex.valueIndex[valueKey{cat, text}]
	return id, ok
}

// CategoryByName returns a category by "table.column".
func (ex *Extraction) CategoryByName(name string) (Category, bool) {
	id, ok := ex.catIndex[strings.ToLower(name)]
	if !ok {
		return Category{}, false
	}
	return ex.Categories[id], true
}

// NumValues returns the count of unique text values (Table 1's metric).
func (ex *Extraction) NumValues() int { return len(ex.Values) }

func (ex *Extraction) addRowWise(t *reldb.Table, colA, colB int, opts Options) {
	catA := ex.catIndex[t.Name+"."+t.Columns[colA].Name]
	catB := ex.catIndex[t.Name+"."+t.Columns[colB].Name]
	name := relName(ex.Categories[catA], ex.Categories[catB])
	if opts.excludedRelation(name) {
		return
	}
	var edges []Edge
	t.Scan(func(_ int, row []reldb.Value) bool {
		sa, okA := row[colA].AsText()
		sb, okB := row[colB].AsText()
		if okA && okB {
			edges = append(edges, Edge{
				From: ex.ensureValue(catA, clip(sa, opts.MaxValueLength)),
				To:   ex.ensureValue(catB, clip(sb, opts.MaxValueLength)),
			})
		}
		return true
	})
	ex.appendGroup(RowWise, name, "", catA, catB, edges)
}

func (ex *Extraction) addPKFK(db *reldb.DB, s *reldb.Table, fkCol int, target *reldb.Table, opts Options) {
	sCols := ex.activeTextColumns(s, opts)
	tCols := ex.activeTextColumns(target, opts)
	if len(sCols) == 0 || len(tCols) == 0 {
		return
	}
	for _, sc := range sCols {
		for _, tc := range tCols {
			catS := ex.catIndex[s.Name+"."+s.Columns[sc].Name]
			catT := ex.catIndex[target.Name+"."+target.Columns[tc].Name]
			name := relName(ex.Categories[catS], ex.Categories[catT])
			if opts.excludedRelation(name) {
				continue
			}
			var edges []Edge
			s.Scan(func(_ int, row []reldb.Value) bool {
				fkVal := row[fkCol]
				if fkVal.IsNull() {
					return true
				}
				sText, ok := row[sc].AsText()
				if !ok {
					return true
				}
				rowID, ok := target.LookupPK(fkVal)
				if !ok {
					return true
				}
				tText, ok := target.Row(rowID)[tc].AsText()
				if !ok {
					return true
				}
				edges = append(edges, Edge{
					From: ex.ensureValue(catS, clip(sText, opts.MaxValueLength)),
					To:   ex.ensureValue(catT, clip(tText, opts.MaxValueLength)),
				})
				return true
			})
			ex.appendGroup(PKFK, name, s.Name+"."+s.Columns[fkCol].Name, catS, catT, edges)
		}
	}
}

func (ex *Extraction) addManyToMany(link *reldb.Table, fkA, fkB int, s, t *reldb.Table, opts Options) {
	sCols := ex.activeTextColumns(s, opts)
	tCols := ex.activeTextColumns(t, opts)
	for _, sc := range sCols {
		for _, tc := range tCols {
			catS := ex.catIndex[s.Name+"."+s.Columns[sc].Name]
			catT := ex.catIndex[t.Name+"."+t.Columns[tc].Name]
			name := relName(ex.Categories[catS], ex.Categories[catT]) + "[" + link.Name + "]"
			if opts.excludedRelation(name) || opts.excludedRelation(relName(ex.Categories[catS], ex.Categories[catT])) {
				continue
			}
			var edges []Edge
			link.Scan(func(_ int, row []reldb.Value) bool {
				av, bv := row[fkA], row[fkB]
				if av.IsNull() || bv.IsNull() {
					return true
				}
				sRow, ok := s.LookupPK(av)
				if !ok {
					return true
				}
				tRow, ok := t.LookupPK(bv)
				if !ok {
					return true
				}
				sText, okS := s.Row(sRow)[sc].AsText()
				tText, okT := t.Row(tRow)[tc].AsText()
				if !okS || !okT {
					return true
				}
				edges = append(edges, Edge{
					From: ex.ensureValue(catS, clip(sText, opts.MaxValueLength)),
					To:   ex.ensureValue(catT, clip(tText, opts.MaxValueLength)),
				})
				return true
			})
			ex.appendGroup(ManyToMany, name, link.Name, catS, catT, edges)
		}
	}
}

func relName(a, b Category) string { return a.Name() + "->" + b.Name() }

// appendGroup deduplicates, sorts and registers a relation group; empty
// groups are dropped.
func (ex *Extraction) appendGroup(kind RelKind, name, via string, src, dst int, edges []Edge) {
	if len(edges) == 0 {
		return
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	dedup := edges[:1]
	for _, e := range edges[1:] {
		if last := dedup[len(dedup)-1]; e != last {
			dedup = append(dedup, e)
		}
	}
	id := len(ex.Relations)
	ex.Relations = append(ex.Relations, RelationGroup{
		ID:             id,
		Kind:           kind,
		Name:           name,
		Via:            via,
		SourceCategory: src,
		TargetCategory: dst,
		Edges:          dedup,
	})
	if ex.relIndex == nil {
		ex.relIndex = make(map[relKey]int)
	}
	ex.relIndex[relKey{kind, name, via}] = id
}

func (ex *Extraction) finalize() {
	for i := range ex.Categories {
		sort.Ints(ex.Categories[i].Members)
	}
}

// Stats summarises the extraction for logging and Table 1.
func (ex *Extraction) Stats() string {
	edges := 0
	for _, r := range ex.Relations {
		edges += len(r.Edges)
	}
	return fmt.Sprintf("%d text values, %d categories, %d relation groups, %d edges",
		len(ex.Values), len(ex.Categories), len(ex.Relations), edges)
}
