package extract

import (
	"strings"
	"testing"

	"github.com/retrodb/retro/internal/reldb"
)

// movieDB builds the paper's running example: movies with directors
// (row-wise), reviews via FK (pk-fk), and genres via a link table (n:m).
func movieDB(t *testing.T) *reldb.DB {
	t.Helper()
	db := reldb.New()
	stmts := []string{
		`CREATE TABLE movies (id INT PRIMARY KEY, title TEXT, director TEXT)`,
		`CREATE TABLE reviews (id INT PRIMARY KEY, movie_id INT REFERENCES movies(id), body TEXT)`,
		`CREATE TABLE genres (id INT PRIMARY KEY, name TEXT)`,
		`CREATE TABLE movie_genres (movie_id INT REFERENCES movies(id), genre_id INT REFERENCES genres(id))`,
		`INSERT INTO movies VALUES (1, 'Brazil', 'Terry Gilliam'), (2, 'Alien', 'Ridley Scott'), (3, 'Valerian', 'Luc Besson'), (4, '5th Element', 'Luc Besson')`,
		`INSERT INTO reviews VALUES (1, 1, 'dark satire'), (2, 2, 'space horror'), (3, 4, 'colourful space opera')`,
		`INSERT INTO genres VALUES (1, 'SciFi'), (2, 'Comedy')`,
		`INSERT INTO movie_genres VALUES (1, 2), (2, 1), (3, 1), (4, 1)`,
	}
	for _, s := range stmts {
		db.MustExec(s)
	}
	return db
}

func groupByName(ex *Extraction, name string) *RelationGroup {
	for i := range ex.Relations {
		if ex.Relations[i].Name == name {
			return &ex.Relations[i]
		}
	}
	return nil
}

func TestCategoriesAndValues(t *testing.T) {
	ex, err := FromDB(movieDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Text columns: movies.title, movies.director, reviews.body, genres.name.
	if len(ex.Categories) != 4 {
		t.Fatalf("categories = %d: %+v", len(ex.Categories), ex.Categories)
	}
	// Unique text values: 4 titles + 3 directors (Besson deduped) + 3 reviews + 2 genres.
	if ex.NumValues() != 12 {
		t.Fatalf("values = %d, want 12 (%s)", ex.NumValues(), ex.Stats())
	}
	cat, ok := ex.CategoryByName("movies.director")
	if !ok || len(cat.Members) != 3 {
		t.Fatalf("movies.director members = %+v", cat)
	}
}

func TestUniquenessSemantics(t *testing.T) {
	// §3.3: same text in the same column -> one embedding; same text in
	// different columns -> distinct embeddings.
	db := reldb.New()
	db.MustExec(`CREATE TABLE t (a TEXT, b TEXT)`)
	db.MustExec(`INSERT INTO t VALUES ('Amelie', 'Amelie'), ('Amelie', 'Other')`)
	ex, err := FromDB(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a: {Amelie}, b: {Amelie, Other} -> 3 values.
	if ex.NumValues() != 3 {
		t.Fatalf("values = %d, want 3", ex.NumValues())
	}
	idA, okA := ex.Lookup("t", "a", "Amelie")
	idB, okB := ex.Lookup("t", "b", "Amelie")
	if !okA || !okB || idA == idB {
		t.Fatalf("cross-column identity: %d %d", idA, idB)
	}
}

func TestRowWiseRelation(t *testing.T) {
	ex, err := FromDB(movieDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := groupByName(ex, "movies.title->movies.director")
	if g == nil {
		t.Fatalf("missing row-wise group; have %v", names(ex))
	}
	if g.Kind != RowWise {
		t.Fatalf("kind = %v", g.Kind)
	}
	if len(g.Edges) != 4 {
		t.Fatalf("edges = %d, want 4", len(g.Edges))
	}
	// Luc Besson appears twice as target (two movies).
	besson, _ := ex.Lookup("movies", "director", "Luc Besson")
	count := 0
	for _, e := range g.Edges {
		if e.To == besson {
			count++
		}
	}
	if count != 2 {
		t.Fatalf("Besson indegree = %d, want 2", count)
	}
}

func TestPKFKRelation(t *testing.T) {
	ex, err := FromDB(movieDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := groupByName(ex, "reviews.body->movies.title")
	if g == nil {
		t.Fatalf("missing pk-fk group; have %v", names(ex))
	}
	if g.Kind != PKFK || len(g.Edges) != 3 {
		t.Fatalf("pk-fk group = %+v", g)
	}
	// A second group connects reviews.body with movies.director.
	g2 := groupByName(ex, "reviews.body->movies.director")
	if g2 == nil || g2.Kind != PKFK {
		t.Fatalf("missing reviews->director group; have %v", names(ex))
	}
}

func TestManyToManyRelation(t *testing.T) {
	ex, err := FromDB(movieDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var nm *RelationGroup
	for i := range ex.Relations {
		if ex.Relations[i].Kind == ManyToMany && strings.Contains(ex.Relations[i].Name, "genres.name") &&
			strings.Contains(ex.Relations[i].Name, "movies.title") {
			nm = &ex.Relations[i]
		}
	}
	if nm == nil {
		t.Fatalf("missing n:m group; have %v", names(ex))
	}
	if len(nm.Edges) != 4 {
		t.Fatalf("n:m edges = %d, want 4", len(nm.Edges))
	}
}

func TestEdgeDeduplication(t *testing.T) {
	db := reldb.New()
	db.MustExec(`CREATE TABLE t (a TEXT, b TEXT)`)
	// Same (x,y) pair twice.
	db.MustExec(`INSERT INTO t VALUES ('x', 'y'), ('x', 'y'), ('x', 'z')`)
	ex, err := FromDB(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := groupByName(ex, "t.a->t.b")
	if g == nil || len(g.Edges) != 2 {
		t.Fatalf("dedup failed: %+v", g)
	}
}

func TestExcludeColumns(t *testing.T) {
	ex, err := FromDB(movieDB(t), Options{ExcludeColumns: []string{"movies.director"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.CategoryByName("movies.director"); ok {
		t.Fatal("excluded column still present")
	}
	if groupByName(ex, "movies.title->movies.director") != nil {
		t.Fatal("relation with excluded column still present")
	}
	if groupByName(ex, "reviews.body->movies.director") != nil {
		t.Fatal("pk-fk relation with excluded column still present")
	}
	// 12 - 3 directors = 9 values.
	if ex.NumValues() != 9 {
		t.Fatalf("values = %d, want 9", ex.NumValues())
	}
}

func TestExcludeRelations(t *testing.T) {
	ex, err := FromDB(movieDB(t), Options{ExcludeRelations: []string{"movies.title->genres.name"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ex.Relations {
		if r.Kind == ManyToMany && strings.Contains(r.Name, "genres.name") && strings.Contains(r.Name, "movies.title") {
			t.Fatalf("excluded relation still present: %s", r.Name)
		}
	}
	// Values are unaffected by relation exclusion.
	if ex.NumValues() != 12 {
		t.Fatalf("values = %d, want 12", ex.NumValues())
	}
	// The reversed spelling must also match.
	ex2, err := FromDB(movieDB(t), Options{ExcludeRelations: []string{"genres.name->movies.title"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ex2.Relations {
		if r.Kind == ManyToMany && strings.Contains(r.Name, "genres.name") && strings.Contains(r.Name, "movies.title") {
			t.Fatalf("reverse-name exclusion failed: %s", r.Name)
		}
	}
}

func TestNullAndNumericColumnsIgnored(t *testing.T) {
	db := reldb.New()
	db.MustExec(`CREATE TABLE t (a TEXT, n FLOAT, b TEXT)`)
	db.MustExec(`INSERT INTO t VALUES ('x', 1.5, NULL), (NULL, 2.5, 'y')`)
	ex, err := FromDB(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ex.NumValues() != 2 {
		t.Fatalf("values = %d, want 2", ex.NumValues())
	}
	// No row has both a and b non-null, so no row-wise edges.
	if g := groupByName(ex, "t.a->t.b"); g != nil {
		t.Fatalf("unexpected group %+v", g)
	}
}

func TestMaxValueLength(t *testing.T) {
	db := reldb.New()
	db.MustExec(`CREATE TABLE t (a TEXT)`)
	db.MustExec(`INSERT INTO t VALUES ('abcdefghij')`)
	ex, err := FromDB(db, Options{MaxValueLength: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Values[0].Text != "abcd" {
		t.Fatalf("clip failed: %q", ex.Values[0].Text)
	}
}

func TestLookupMisses(t *testing.T) {
	ex, err := FromDB(movieDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ex.Lookup("movies", "title", "Nonexistent"); ok {
		t.Fatal("found missing value")
	}
	if _, ok := ex.Lookup("nope", "title", "Brazil"); ok {
		t.Fatal("found value in missing category")
	}
}

func TestCategoryMembersSorted(t *testing.T) {
	ex, err := FromDB(movieDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range ex.Categories {
		for i := 1; i < len(c.Members); i++ {
			if c.Members[i-1] >= c.Members[i] {
				t.Fatalf("category %s members not strictly ascending: %v", c.Name(), c.Members)
			}
		}
	}
}

func TestRelKindString(t *testing.T) {
	if RowWise.String() != "row-wise" || PKFK.String() != "pk-fk" || ManyToMany.String() != "n:m" {
		t.Fatal("RelKind strings wrong")
	}
	if RelKind(9).String() == "" {
		t.Fatal("unknown kind should render")
	}
}

func TestStats(t *testing.T) {
	ex, err := FromDB(movieDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.Stats(), "12 text values") {
		t.Fatalf("Stats = %s", ex.Stats())
	}
}

func TestDeterministicExtraction(t *testing.T) {
	a, err := FromDB(movieDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromDB(movieDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Fatal("extraction not deterministic")
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatalf("value %d differs", i)
		}
	}
	for i := range a.Relations {
		if a.Relations[i].Name != b.Relations[i].Name || len(a.Relations[i].Edges) != len(b.Relations[i].Edges) {
			t.Fatalf("relation %d differs", i)
		}
	}
}

func names(ex *Extraction) []string {
	var out []string
	for _, r := range ex.Relations {
		out = append(out, r.Name)
	}
	return out
}
