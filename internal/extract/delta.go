package extract

import (
	"fmt"

	"github.com/retrodb/retro/internal/reldb"
)

// Delta records what ApplyInserts appended to an Extraction: the ids of
// values, categories and relation groups that did not exist before, plus
// every relation edge added — including edges between pre-existing
// values, which a new row creates whenever it pairs two texts already in
// the vocabulary. It is the input core.GrowProblem uses to grow a solved
// retrofitting problem in place instead of rebuilding it.
type Delta struct {
	// NewValues are the TextValue ids created, in ascending id order.
	NewValues []int
	// NewCategories are the Category ids created (only when a table or
	// column appeared after the base extraction; normally empty).
	NewCategories []int
	// NewRelations are the RelationGroup ids created (a group is only
	// materialised once it has an edge, so the first row connecting two
	// columns creates one).
	NewRelations []int
	// Edges are the appended edges in application order, each tagged
	// with its relation group id.
	Edges []DeltaEdge
}

// DeltaEdge is one appended relation edge.
type DeltaEdge struct {
	Relation int
	Edge     Edge
}

// Empty reports whether the delta changes the learning problem at all
// (a row with no text values and no relations leaves it untouched).
func (d *Delta) Empty() bool {
	return len(d.NewValues) == 0 && len(d.Edges) == 0 && len(d.NewCategories) == 0
}

// ApplyInserts folds newly committed rows of one table into the
// extraction: the §3.2 pass run over a delta instead of the whole
// database. It appends the text values, categorial connections and
// relation edges the rows imply, leaving everything already extracted
// untouched, so the cost is proportional to the rows' own connections —
// independent of the database size.
//
// rowIDs must identify rows already committed to the table (a batch may
// reference its own earlier rows through foreign keys), and opts must
// match the options the extraction was originally built with; diverging
// exclusions would extract a different vocabulary than FromDB sees.
func (ex *Extraction) ApplyInserts(db *reldb.DB, table string, rowIDs []int, opts Options) (*Delta, error) {
	t, ok := db.Table(table)
	if !ok {
		return nil, fmt.Errorf("extract: delta for unknown table %q", table)
	}
	nVals, nCats, nRels := len(ex.Values), len(ex.Categories), len(ex.Relations)
	d := &Delta{}
	for _, rowID := range rowIDs {
		if rowID < 0 || rowID >= t.NumRows() {
			return nil, fmt.Errorf("extract: delta row %d out of range for table %q (%d rows)", rowID, t.Name, t.NumRows())
		}
		var err error
		if t.IsLinkTable() {
			err = ex.applyLinkRow(db, t, rowID, opts, d)
		} else {
			err = ex.applyRow(db, t, rowID, opts, d)
		}
		if err != nil {
			return nil, err
		}
	}
	for id := nVals; id < len(ex.Values); id++ {
		d.NewValues = append(d.NewValues, id)
	}
	for id := nCats; id < len(ex.Categories); id++ {
		d.NewCategories = append(d.NewCategories, id)
	}
	for id := nRels; id < len(ex.Relations); id++ {
		d.NewRelations = append(d.NewRelations, id)
	}
	return d, nil
}

// applyRow extracts one regular-table row: its text values, the row-wise
// edges between its text columns, and the PK-FK edges to the rows it
// references. Nothing can reference the new row yet (FK existence is
// checked at insert time), so no reverse scan is needed.
func (ex *Extraction) applyRow(db *reldb.DB, t *reldb.Table, rowID int, opts Options, d *Delta) error {
	row := t.Row(rowID)
	cols := ex.activeTextColumns(t, opts)

	// Values and categorial connections (FromDB pass 1).
	for _, ci := range cols {
		cat := ex.ensureCategory(t.Name, t.Columns[ci].Name)
		if s, ok := row[ci].AsText(); ok {
			ex.ensureValue(cat, clip(s, opts.MaxValueLength))
		}
	}

	// Row-wise relationships (pass 2a).
	for a := 0; a < len(cols); a++ {
		sa, okA := row[cols[a]].AsText()
		if !okA {
			continue
		}
		for b := a + 1; b < len(cols); b++ {
			sb, okB := row[cols[b]].AsText()
			if !okB {
				continue
			}
			catA := ex.catIndex[t.Name+"."+t.Columns[cols[a]].Name]
			catB := ex.catIndex[t.Name+"."+t.Columns[cols[b]].Name]
			name := relName(ex.Categories[catA], ex.Categories[catB])
			if opts.excludedRelation(name) {
				continue
			}
			ex.appendDeltaEdge(RowWise, name, "", catA, catB, Edge{
				From: ex.ensureValue(catA, clip(sa, opts.MaxValueLength)),
				To:   ex.ensureValue(catB, clip(sb, opts.MaxValueLength)),
			}, d)
		}
	}

	// PK-FK relationships (pass 2b): this row's text columns against the
	// text columns of every row it references.
	for _, fkCol := range t.ForeignKeyColumns() {
		fkVal := row[fkCol]
		if fkVal.IsNull() {
			continue
		}
		fk := t.Columns[fkCol].FK
		target, ok := db.Table(fk.Table)
		if !ok {
			return fmt.Errorf("extract: FK to unknown table %q", fk.Table)
		}
		targetRow, ok := target.LookupPK(fkVal)
		if !ok {
			// Cannot happen for a committed row; FK existence was enforced.
			return fmt.Errorf("extract: committed row references missing %s.%s = %s", fk.Table, fk.Column, fkVal.String())
		}
		tCols := ex.activeTextColumns(target, opts)
		via := t.Name + "." + t.Columns[fkCol].Name
		for _, sc := range cols {
			sText, ok := row[sc].AsText()
			if !ok {
				continue
			}
			for _, tc := range tCols {
				tText, ok := target.Row(targetRow)[tc].AsText()
				if !ok {
					continue
				}
				catS := ex.ensureCategory(t.Name, t.Columns[sc].Name)
				catT := ex.ensureCategory(target.Name, target.Columns[tc].Name)
				name := relName(ex.Categories[catS], ex.Categories[catT])
				if opts.excludedRelation(name) {
					continue
				}
				ex.appendDeltaEdge(PKFK, name, via, catS, catT, Edge{
					From: ex.ensureValue(catS, clip(sText, opts.MaxValueLength)),
					To:   ex.ensureValue(catT, clip(tText, opts.MaxValueLength)),
				}, d)
			}
		}
	}
	return nil
}

// applyLinkRow extracts one link-table row as n:m edges (pass 2c).
func (ex *Extraction) applyLinkRow(db *reldb.DB, link *reldb.Table, rowID int, opts Options, d *Delta) error {
	fks := link.ForeignKeyColumns()
	if len(fks) != 2 {
		return fmt.Errorf("extract: link table %q has %d FK columns", link.Name, len(fks))
	}
	row := link.Row(rowID)
	av, bv := row[fks[0]], row[fks[1]]
	if av.IsNull() || bv.IsNull() {
		return nil
	}
	s, okS := db.Table(link.Columns[fks[0]].FK.Table)
	t, okT := db.Table(link.Columns[fks[1]].FK.Table)
	if !okS || !okT {
		return fmt.Errorf("extract: link table %q references unknown tables", link.Name)
	}
	sRow, ok := s.LookupPK(av)
	if !ok {
		return fmt.Errorf("extract: committed link row references missing %s pk %s", s.Name, av.String())
	}
	tRow, ok := t.LookupPK(bv)
	if !ok {
		return fmt.Errorf("extract: committed link row references missing %s pk %s", t.Name, bv.String())
	}
	for _, sc := range ex.activeTextColumns(s, opts) {
		sText, okText := s.Row(sRow)[sc].AsText()
		if !okText {
			continue
		}
		for _, tc := range ex.activeTextColumns(t, opts) {
			tText, okText := t.Row(tRow)[tc].AsText()
			if !okText {
				continue
			}
			catS := ex.ensureCategory(s.Name, s.Columns[sc].Name)
			catT := ex.ensureCategory(t.Name, t.Columns[tc].Name)
			base := relName(ex.Categories[catS], ex.Categories[catT])
			name := base + "[" + link.Name + "]"
			if opts.excludedRelation(name) || opts.excludedRelation(base) {
				continue
			}
			ex.appendDeltaEdge(ManyToMany, name, link.Name, catS, catT, Edge{
				From: ex.ensureValue(catS, clip(sText, opts.MaxValueLength)),
				To:   ex.ensureValue(catT, clip(tText, opts.MaxValueLength)),
			}, d)
		}
	}
	return nil
}

// appendDeltaEdge inserts one edge into its relation group, creating the
// group on first use, deduplicating in O(1) against a per-group edge
// set, and recording genuinely-new edges in the delta. New edges go to
// the tail of Edges — a sorted insert would memmove O(|E_r|) per edge
// and quietly reintroduce the O(database) write cost this path removes.
func (ex *Extraction) appendDeltaEdge(kind RelKind, name, via string, src, dst int, e Edge, d *Delta) {
	if ex.relIndex == nil {
		ex.relIndex = make(map[relKey]int)
		for i := range ex.Relations {
			r := &ex.Relations[i]
			ex.relIndex[relKey{r.Kind, r.Name, r.Via}] = i
		}
	}
	key := relKey{kind, name, via}
	gid, ok := ex.relIndex[key]
	if !ok {
		gid = len(ex.Relations)
		ex.Relations = append(ex.Relations, RelationGroup{
			ID:             gid,
			Kind:           kind,
			Name:           name,
			Via:            via,
			SourceCategory: src,
			TargetCategory: dst,
		})
		ex.relIndex[key] = gid
	}
	g := &ex.Relations[gid]
	if ex.edgeSets == nil {
		ex.edgeSets = make(map[int]map[Edge]struct{})
	}
	set, ok := ex.edgeSets[gid]
	if !ok {
		// One O(|E_r|) pass the first time a group takes a delta edge;
		// every append after that is O(1).
		set = make(map[Edge]struct{}, len(g.Edges)+1)
		for _, have := range g.Edges {
			set[have] = struct{}{}
		}
		ex.edgeSets[gid] = set
	}
	if _, dup := set[e]; dup {
		return // duplicate of an existing edge
	}
	set[e] = struct{}{}
	g.Edges = append(g.Edges, e)
	d.Edges = append(d.Edges, DeltaEdge{Relation: gid, Edge: e})
}
