package extract

import (
	"fmt"
	"sort"
	"testing"

	"github.com/retrodb/retro/internal/reldb"
)

// valueSet renders the extraction's values as canonical (category, text)
// strings, so extractions with different id assignments compare equal.
func valueSet(ex *Extraction) map[string]bool {
	out := make(map[string]bool, len(ex.Values))
	for _, v := range ex.Values {
		out[ex.Categories[v.Category].Name()+"\x00"+v.Text] = true
	}
	return out
}

// edgeSet renders every relation edge as a canonical string keyed by the
// group identity (kind, name, via) and the endpoint values.
func edgeSet(ex *Extraction) map[string]bool {
	out := make(map[string]bool)
	label := func(id int) string {
		v := ex.Values[id]
		return ex.Categories[v.Category].Name() + ":" + v.Text
	}
	for _, r := range ex.Relations {
		for _, e := range r.Edges {
			out[fmt.Sprintf("%d|%s|%s|%s->%s", r.Kind, r.Name, r.Via, label(e.From), label(e.To))] = true
		}
	}
	return out
}

func diffSets(t *testing.T, what string, got, want map[string]bool) {
	t.Helper()
	for k := range want {
		if !got[k] {
			t.Errorf("%s: missing %q", what, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: unexpected %q", what, k)
		}
	}
}

// applyAndCompare inserts rows into the table on a DB that already has a
// base extraction, applies the delta, and requires the grown extraction
// to match a fresh full extraction of the mutated database.
func applyAndCompare(t *testing.T, db *reldb.DB, ex *Extraction, table string, rows [][]reldb.Value, opts Options) *Delta {
	t.Helper()
	var ids []int
	for _, row := range rows {
		id, err := db.Insert(table, row)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	d, err := ex.ApplyInserts(db, table, ids, opts)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := FromDB(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	diffSets(t, "values", valueSet(ex), valueSet(fresh))
	diffSets(t, "edges", edgeSet(ex), edgeSet(fresh))
	if len(ex.Categories) != len(fresh.Categories) {
		t.Fatalf("categories: %d vs fresh %d", len(ex.Categories), len(fresh.Categories))
	}
	return d
}

func TestApplyInsertsMatchesFullExtraction(t *testing.T) {
	db := movieDB(t)
	ex, err := FromDB(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := ex.NumValues()

	// A new movie: new title value, shared director value, row-wise edge.
	d := applyAndCompare(t, db, ex, "movies", [][]reldb.Value{
		{reldb.Int(5), reldb.Text("The City of Lost Children"), reldb.Text("Luc Besson")},
	}, Options{})
	if len(d.NewValues) != 1 {
		t.Fatalf("new values = %v, want exactly the new title", d.NewValues)
	}
	if ex.NumValues() != before+1 {
		t.Fatalf("values = %d, want %d", ex.NumValues(), before+1)
	}
	// The row-wise edge must reference the PRE-EXISTING director value.
	if len(d.Edges) != 1 {
		t.Fatalf("delta edges = %+v, want one row-wise edge", d.Edges)
	}

	// A review referencing the new movie: PK-FK edges via reviews.movie_id.
	d = applyAndCompare(t, db, ex, "reviews", [][]reldb.Value{
		{reldb.Int(4), reldb.Int(5), reldb.Text("dreamlike and strange")},
	}, Options{})
	if len(d.NewValues) != 1 || len(d.Edges) != 2 {
		// reviews.body -> movies.title and reviews.body -> movies.director
		t.Fatalf("review delta: values %v edges %+v", d.NewValues, d.Edges)
	}

	// A link row: n:m edges between existing values, no new values.
	d = applyAndCompare(t, db, ex, "movie_genres", [][]reldb.Value{
		{reldb.Int(5), reldb.Int(2)},
	}, Options{})
	if len(d.NewValues) != 0 {
		t.Fatalf("link delta created values: %v", d.NewValues)
	}
	if len(d.Edges) == 0 {
		t.Fatal("link delta produced no edges")
	}
}

func TestApplyInsertsBatchAndDuplicates(t *testing.T) {
	db := movieDB(t)
	ex, err := FromDB(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One batch: a duplicate-title movie (no new value, but a new
	// row-wise edge) and two brand-new movies sharing a new director.
	d := applyAndCompare(t, db, ex, "movies", [][]reldb.Value{
		{reldb.Int(6), reldb.Text("Alien"), reldb.Text("Luc Besson")},
		{reldb.Int(7), reldb.Text("Delicatessen"), reldb.Text("Jeunet and Caro")},
		{reldb.Int(8), reldb.Text("Amelie"), reldb.Text("Jeunet and Caro")},
	}, Options{})
	// New values: Delicatessen, Amelie, Jeunet and Caro.
	if len(d.NewValues) != 3 {
		t.Fatalf("new values = %d, want 3", len(d.NewValues))
	}
	sort.Ints(d.NewValues)
	if d.NewValues[0] != ex.NumValues()-3 {
		t.Fatalf("new value ids not contiguous at the tail: %v (num values %d)", d.NewValues, ex.NumValues())
	}

	// Re-applying an identical row's edge is deduplicated: an exact
	// duplicate of row 6 only adds nothing (values and edges exist).
	id, err := db.Insert("movies", []reldb.Value{reldb.Int(9), reldb.Text("Alien"), reldb.Text("Luc Besson")})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ex.ApplyInserts(db, "movies", []int{id}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Empty() {
		t.Fatalf("duplicate row produced a non-empty delta: %+v", d2)
	}
}

func TestApplyInsertsCreatesGroupOnFirstEdge(t *testing.T) {
	// A table whose second text column starts out entirely NULL: the base
	// extraction has no row-wise group; the first row with both texts
	// creates it.
	db := reldb.New()
	db.MustExec(`CREATE TABLE t (id INT PRIMARY KEY, a TEXT, b TEXT)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'alpha', NULL)`)
	ex, err := FromDB(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Relations) != 0 {
		t.Fatalf("base relations = %d, want 0", len(ex.Relations))
	}
	d := applyAndCompare(t, db, ex, "t", [][]reldb.Value{
		{reldb.Int(2), reldb.Text("beta"), reldb.Text("gamma")},
	}, Options{})
	if len(d.NewRelations) != 1 || len(ex.Relations) != 1 {
		t.Fatalf("new relations = %v (total %d), want one row-wise group", d.NewRelations, len(ex.Relations))
	}
	if g := ex.Relations[d.NewRelations[0]]; g.Kind != RowWise || len(g.Edges) != 1 {
		t.Fatalf("created group: %+v", g)
	}
}

func TestApplyInsertsRespectsExclusions(t *testing.T) {
	db := movieDB(t)
	opts := Options{ExcludeColumns: []string{"movies.director"}}
	ex, err := FromDB(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	d := applyAndCompare(t, db, ex, "movies", [][]reldb.Value{
		{reldb.Int(5), reldb.Text("Subway"), reldb.Text("Luc Besson")},
	}, opts)
	if len(d.NewValues) != 1 {
		t.Fatalf("new values = %v, want only the title", d.NewValues)
	}
	if _, ok := ex.Lookup("movies", "director", "Luc Besson"); ok {
		t.Fatal("excluded column leaked into the delta")
	}
}

func TestApplyInsertsVia(t *testing.T) {
	// Two FKs from one table to the same target share a relation Name but
	// not a Via; delta edges must land in the right group.
	db := reldb.New()
	db.MustExec(`CREATE TABLE persons (id INT PRIMARY KEY, name TEXT)`)
	db.MustExec(`CREATE TABLE movies (id INT PRIMARY KEY, title TEXT,
		director_id INT REFERENCES persons(id), producer_id INT REFERENCES persons(id))`)
	db.MustExec(`INSERT INTO persons VALUES (1, 'Gilliam'), (2, 'Milchan')`)
	db.MustExec(`INSERT INTO movies VALUES (1, 'Brazil', 1, 2)`)
	ex, err := FromDB(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var vias []string
	for _, r := range ex.Relations {
		if r.Kind == PKFK {
			vias = append(vias, r.Via)
		}
	}
	sort.Strings(vias)
	want := []string{"movies.director_id", "movies.producer_id"}
	if len(vias) != 2 || vias[0] != want[0] || vias[1] != want[1] {
		t.Fatalf("PKFK vias = %v, want %v", vias, want)
	}
	applyAndCompare(t, db, ex, "movies", [][]reldb.Value{
		{reldb.Int(2), reldb.Text("The Fisher King"), reldb.Int(1), reldb.Int(1)},
	}, Options{})
}
