// Package word2vec implements the Skip-Gram model with negative sampling
// (Mikolov et al. 2013) from scratch. DeepWalk (§4.6 of the paper) trains
// this model on random-walk "sentences"; the same code can train word
// embeddings on token corpora for the synthetic pre-trained embedding.
package word2vec

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/retrodb/retro/internal/vec"
)

// Config holds the Skip-Gram hyperparameters. Zero values are replaced by
// the defaults noted per field.
type Config struct {
	Dim          int     // embedding dimensionality (default 128)
	Window       int     // max context window each side (default 5)
	Negative     int     // negative samples per positive pair (default 5)
	Epochs       int     // passes over the corpus (default 1)
	LearningRate float64 // initial SGD learning rate (default 0.025)
	MinLearning  float64 // floor for the linear decay (default lr/1e4)
	Subsample    float64 // word2vec subsample threshold t, 0 = off
	Seed         int64   // RNG seed (default 1)
}

func (c Config) withDefaults() Config {
	if c.Dim <= 0 {
		c.Dim = 128
	}
	if c.Window <= 0 {
		c.Window = 5
	}
	if c.Negative <= 0 {
		c.Negative = 5
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.025
	}
	if c.MinLearning <= 0 {
		c.MinLearning = c.LearningRate / 1e4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Model holds the trained matrices. In is the input (target) embedding,
// the one consumers use; Out is the context matrix.
type Model struct {
	In, Out *vec.Matrix
	Vocab   int
	Config  Config
}

// Vector returns the learned embedding of token id.
func (m *Model) Vector(id int) []float64 { return m.In.Row(id) }

// Train fits Skip-Gram with negative sampling on a corpus of sentences of
// token ids in [0, vocabSize). Deterministic for a fixed config seed.
func Train(corpus [][]int, vocabSize int, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if vocabSize <= 0 {
		return nil, fmt.Errorf("word2vec: vocabSize must be positive")
	}
	counts := make([]float64, vocabSize)
	totalTokens := 0
	for _, sent := range corpus {
		for _, tok := range sent {
			if tok < 0 || tok >= vocabSize {
				return nil, fmt.Errorf("word2vec: token %d outside vocab of %d", tok, vocabSize)
			}
			counts[tok]++
			totalTokens++
		}
	}
	if totalTokens == 0 {
		return nil, fmt.Errorf("word2vec: empty corpus")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	in := vec.NewMatrix(vocabSize, cfg.Dim)
	out := vec.NewMatrix(vocabSize, cfg.Dim)
	// word2vec convention: inputs uniform in [-0.5/dim, 0.5/dim), outputs zero.
	in.Randomize(rng, 0.5/float64(cfg.Dim))

	sampler := newUnigramSampler(counts)

	// Subsampling keep-probability per token (word2vec formula).
	keepProb := make([]float64, vocabSize)
	for i, c := range counts {
		if cfg.Subsample <= 0 || c == 0 {
			keepProb[i] = 1
			continue
		}
		f := c / float64(totalTokens)
		p := (math.Sqrt(f/cfg.Subsample) + 1) * cfg.Subsample / f
		if p > 1 {
			p = 1
		}
		keepProb[i] = p
	}

	totalSteps := float64(cfg.Epochs) * float64(totalTokens)
	step := 0.0
	gradBuf := make([]float64, cfg.Dim)
	sent2 := make([]int, 0, 64)

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, sent := range corpus {
			// Apply subsampling for this pass.
			sent2 = sent2[:0]
			for _, tok := range sent {
				if keepProb[tok] >= 1 || rng.Float64() < keepProb[tok] {
					sent2 = append(sent2, tok)
				}
			}
			for pos, target := range sent2 {
				lr := cfg.LearningRate * (1 - step/totalSteps)
				if lr < cfg.MinLearning {
					lr = cfg.MinLearning
				}
				step++
				// Shrunk window, as in the reference implementation.
				w := 1 + rng.Intn(cfg.Window)
				lo, hi := pos-w, pos+w
				if lo < 0 {
					lo = 0
				}
				if hi >= len(sent2) {
					hi = len(sent2) - 1
				}
				for cpos := lo; cpos <= hi; cpos++ {
					if cpos == pos {
						continue
					}
					context := sent2[cpos]
					trainPair(in.Row(target), out, context, sampler, rng, cfg.Negative, lr, gradBuf)
				}
			}
		}
	}
	return &Model{In: in, Out: out, Vocab: vocabSize, Config: cfg}, nil
}

// trainPair applies one positive (target, context) update plus negative
// samples, with the standard SGNS gradients.
func trainPair(vIn []float64, out *vec.Matrix, context int, sampler *unigramSampler, rng *rand.Rand, negative int, lr float64, grad []float64) {
	vec.Zero(grad)
	// Positive sample: label 1.
	sgnsUpdate(vIn, out.Row(context), 1, lr, grad)
	// Negative samples: label 0; resample collisions with the positive.
	for n := 0; n < negative; n++ {
		neg := sampler.Sample(rng)
		if neg == context {
			continue
		}
		sgnsUpdate(vIn, out.Row(neg), 0, lr, grad)
	}
	vec.Axpy(vIn, 1, grad)
}

// sgnsUpdate performs one logistic-regression step on (vIn, vOut) with the
// given label, writing the input-side gradient into gradAccum and updating
// vOut in place.
func sgnsUpdate(vIn, vOut []float64, label float64, lr float64, gradAccum []float64) {
	score := sigmoid(vec.Dot(vIn, vOut))
	g := lr * (label - score)
	vec.Axpy(gradAccum, g, vOut)
	vec.Axpy(vOut, g, vIn)
}

func sigmoid(x float64) float64 {
	// Clamp to the word2vec MAX_EXP-style range for numeric stability.
	if x > 6 {
		return 1 - 1e-8
	}
	if x < -6 {
		return 1e-8
	}
	return 1 / (1 + math.Exp(-x))
}

// unigramSampler draws negatives proportionally to count^0.75, the noise
// distribution of the original paper, via binary search on the CDF.
type unigramSampler struct {
	cdf []float64
}

func newUnigramSampler(counts []float64) *unigramSampler {
	cdf := make([]float64, len(counts))
	total := 0.0
	for i, c := range counts {
		total += math.Pow(c, 0.75)
		cdf[i] = total
	}
	if total == 0 {
		// Degenerate corpus: uniform.
		for i := range cdf {
			cdf[i] = float64(i + 1)
		}
		total = float64(len(cdf))
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &unigramSampler{cdf: cdf}
}

// Sample draws one token id from the noise distribution.
func (s *unigramSampler) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(s.cdf, u)
	if i >= len(s.cdf) {
		i = len(s.cdf) - 1
	}
	return i
}
