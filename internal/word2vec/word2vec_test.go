package word2vec

import (
	"math"
	"math/rand"
	"testing"

	"github.com/retrodb/retro/internal/vec"
)

// clusterCorpus builds sentences where tokens 0..3 co-occur and tokens
// 4..7 co-occur, never mixing. SGNS must place same-cluster tokens closer
// than cross-cluster tokens.
func clusterCorpus(rng *rand.Rand, sentences, length int) [][]int {
	corpus := make([][]int, sentences)
	for i := range corpus {
		base := 0
		if i%2 == 1 {
			base = 4
		}
		sent := make([]int, length)
		for j := range sent {
			sent[j] = base + rng.Intn(4)
		}
		corpus[i] = sent
	}
	return corpus
}

func TestTrainSeparatesClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	corpus := clusterCorpus(rng, 200, 20)
	model, err := Train(corpus, 8, Config{Dim: 16, Epochs: 3, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	intra, inter := 0.0, 0.0
	nIntra, nInter := 0, 0
	for a := 0; a < 8; a++ {
		for b := a + 1; b < 8; b++ {
			cos := vec.Cosine(model.Vector(a), model.Vector(b))
			if (a < 4) == (b < 4) {
				intra += cos
				nIntra++
			} else {
				inter += cos
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra <= inter+0.2 {
		t.Fatalf("clusters not separated: intra=%.3f inter=%.3f", intra, inter)
	}
}

func TestTrainDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	corpus := clusterCorpus(rng, 30, 10)
	m1, err := Train(corpus, 8, Config{Dim: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(corpus, 8, Config{Dim: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !m1.In.Equal(m2.In, 0) {
		t.Fatal("training not deterministic under fixed seed")
	}
	m3, err := Train(corpus, 8, Config{Dim: 8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m1.In.Equal(m3.In, 1e-12) {
		t.Fatal("different seeds should differ")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, 0, Config{}); err == nil {
		t.Fatal("zero vocab accepted")
	}
	if _, err := Train([][]int{{}}, 4, Config{}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := Train([][]int{{5}}, 4, Config{}); err == nil {
		t.Fatal("out-of-vocab token accepted")
	}
	if _, err := Train([][]int{{-1}}, 4, Config{}); err == nil {
		t.Fatal("negative token accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Dim != 128 || c.Window != 5 || c.Negative != 5 || c.Epochs != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	if c.LearningRate != 0.025 || c.MinLearning <= 0 || c.Seed != 1 {
		t.Fatalf("defaults = %+v", c)
	}
	// Explicit values survive.
	c2 := Config{Dim: 3, Window: 1, Negative: 2, Epochs: 7, LearningRate: 0.5, Seed: 5}.withDefaults()
	if c2.Dim != 3 || c2.Window != 1 || c2.Negative != 2 || c2.Epochs != 7 || c2.LearningRate != 0.5 || c2.Seed != 5 {
		t.Fatalf("explicit config mangled: %+v", c2)
	}
}

func TestSubsamplingRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	corpus := clusterCorpus(rng, 50, 30)
	m, err := Train(corpus, 8, Config{Dim: 8, Subsample: 1e-3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Vectors must have moved from init and be finite.
	for id := 0; id < 8; id++ {
		for _, v := range m.Vector(id) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite embedding")
			}
		}
	}
}

func TestSigmoid(t *testing.T) {
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Fatalf("sigmoid(0) = %v", s)
	}
	if s := sigmoid(100); s >= 1 || s < 0.99 {
		t.Fatalf("sigmoid(100) = %v", s)
	}
	if s := sigmoid(-100); s <= 0 || s > 0.01 {
		t.Fatalf("sigmoid(-100) = %v", s)
	}
}

func TestUnigramSamplerDistribution(t *testing.T) {
	counts := []float64{1000, 10, 0, 10}
	s := newUnigramSampler(counts)
	rng := rand.New(rand.NewSource(6))
	hist := make([]int, 4)
	for i := 0; i < 20000; i++ {
		hist[s.Sample(rng)]++
	}
	if hist[0] <= hist[1] || hist[0] <= hist[3] {
		t.Fatalf("frequent token not sampled most: %v", hist)
	}
	if hist[2] > 50 {
		t.Fatalf("zero-count token oversampled: %v", hist)
	}
	// The ^0.75 damping means token 0 (100x counts) should be sampled
	// well below 100x as often as token 1.
	ratio := float64(hist[0]) / float64(hist[1]+1)
	if ratio > 60 {
		t.Fatalf("damping missing: ratio = %.1f", ratio)
	}
}

func TestUnigramSamplerDegenerate(t *testing.T) {
	s := newUnigramSampler([]float64{0, 0, 0})
	rng := rand.New(rand.NewSource(7))
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		v := s.Sample(rng)
		if v < 0 || v > 2 {
			t.Fatalf("sample out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatal("degenerate sampler should still spread")
	}
}

func TestVectorAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	corpus := clusterCorpus(rng, 10, 10)
	m, err := Train(corpus, 8, Config{Dim: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Vector(0)) != 4 {
		t.Fatal("Vector length wrong")
	}
	if m.Vocab != 8 {
		t.Fatal("Vocab wrong")
	}
}
