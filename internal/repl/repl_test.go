// Integration and chaos tests for streaming WAL replication. The tests
// run a real primary (storage engine + serving HTTP stack on a TCP
// listener whose port survives restarts) and a real follower (Bootstrap
// + Run against that URL, applying through the server's replicated-write
// path), then kill processes the way kill -9 does: the listener and
// every connection die instantly and the storage engine is ABANDONED
// without Close — no flush, no final checkpoint — exactly the state a
// SIGKILL leaves. Recovery must be a pure function of the directory.
package repl_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/datagen"
	"github.com/retrodb/retro/internal/repl"
	"github.com/retrodb/retro/internal/server"
	"github.com/retrodb/retro/internal/storage"
)

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// freshDataset loads a new copy of the deterministic toy world — the
// same one on every call, which is the replication contract: primary and
// follower boot from identical datasets.
func freshDataset() (*retro.DB, *retro.Embedding, error) {
	w := datagen.TMDB(datagen.TMDBConfig{Movies: 40, Dim: 12, Seed: 1})
	return w.DB, w.Embedding, nil
}

func testStorageOpts(extra func(*retro.StorageOptions)) retro.StorageOptions {
	cfg := retro.Defaults()
	cfg.ANNThreshold = 1
	opts := retro.StorageOptions{Config: cfg}
	if extra != nil {
		extra(&opts)
	}
	return opts
}

// primary is one bootable primary process: engine + serving stack on a
// stable address.
type primary struct {
	t    *testing.T
	dir  string
	opts retro.StorageOptions
	addr string

	eng *retro.StorageEngine
	srv *server.Server
	hs  *http.Server
}

func startPrimary(t *testing.T, dir string, opts retro.StorageOptions) *primary {
	t.Helper()
	p := &primary{t: t, dir: dir, opts: opts}
	p.boot("127.0.0.1:0")
	return p
}

func (p *primary) boot(addr string) {
	p.t.Helper()
	db, emb, err := freshDataset()
	if err != nil {
		p.t.Fatal(err)
	}
	p.eng, err = retro.OpenStorage(p.dir, db, emb, p.opts)
	if err != nil {
		p.t.Fatalf("opening primary storage: %v", err)
	}
	p.srv = server.New(p.eng.Session(), server.Config{
		Engine: p.eng, CacheSize: -1, Logger: quietLogger(),
	})
	var ln net.Listener
	// Restarts must come back on the SAME port (the follower's primary
	// URL is fixed); retry briefly in case the old socket lingers.
	for i := 0; ; i++ {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if i > 100 {
			p.t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	p.addr = ln.Addr().String()
	p.hs = &http.Server{Handler: p.srv.Handler()}
	go p.hs.Serve(ln)
}

func (p *primary) url() string { return "http://" + p.addr }

// kill9 is SIGKILL: listener and connections die instantly, the engine
// is abandoned un-Closed. Acked state is on disk (fsync-before-ack);
// everything else is gone.
func (p *primary) kill9() {
	p.hs.Close()
	p.eng, p.srv, p.hs = nil, nil, nil
}

// restart recovers the directory and serves on the same address.
func (p *primary) restart() {
	p.t.Helper()
	p.boot(p.addr)
}

func (p *primary) shutdown() {
	if p.hs != nil {
		p.hs.Close()
	}
	if p.eng != nil {
		p.eng.Close()
	}
}

// insert posts one movies row over HTTP and requires the ack — after it
// returns, the row is fsynced on the primary and replication owes it to
// the follower.
func (p *primary) insert(id int, title string) {
	p.t.Helper()
	insertRow(p.t, p.url(), id, title)
}

func insertRow(t *testing.T, url string, id int, title string) {
	t.Helper()
	db, _, err := freshDataset()
	if err != nil {
		t.Fatal(err)
	}
	tbl, ok := db.Table("movies")
	if !ok {
		t.Fatal("no movies table")
	}
	row := make([]any, len(tbl.Columns))
	row[0], row[1] = id, title
	body, _ := json.Marshal(map[string]any{"table": "movies", "values": row})
	resp, err := http.Post(url+"/v1/insert", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("insert %q: %v", title, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("insert %q: status %d: %s", title, resp.StatusCode, msg)
	}
}

// replica is one bootable follower process: Follower + read-only serving
// stack, applying through the server write path like cmd/retro-serve.
type replica struct {
	t   *testing.T
	dir string

	fol    *repl.Follower
	srv    *server.Server
	hs     http.Handler
	cancel context.CancelFunc
	done   chan struct{}
}

func startReplica(t *testing.T, dir, primaryURL string, extra func(*repl.Config)) *replica {
	t.Helper()
	cfg := repl.Config{
		Primary:    primaryURL,
		Dir:        dir,
		Dataset:    freshDataset,
		Storage:    testStorageOpts(nil),
		PollWait:   300 * time.Millisecond,
		BackoffMin: 10 * time.Millisecond,
		BackoffMax: 200 * time.Millisecond,
		Logger:     quietLogger(),
	}
	if extra != nil {
		extra(&cfg)
	}
	fol, err := repl.NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bootCtx, cancelBoot := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelBoot()
	if err := fol.Bootstrap(bootCtx); err != nil {
		t.Fatalf("replica bootstrap: %v", err)
	}
	srv := server.New(fol.Engine().Session(), server.Config{
		Engine: fol.Engine(), CacheSize: -1, Logger: quietLogger(),
		ReadOnly: true, Replica: fol.Status,
	})
	fol.Attach(srv.ApplyReplicated, srv.ReplaceEngine)
	r := &replica{t: t, dir: dir, fol: fol, srv: srv, hs: srv.Handler()}
	r.run()
	return r
}

func (r *replica) run() {
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.done = make(chan struct{})
	go func() {
		r.fol.Run(ctx)
		close(r.done)
	}()
}

// kill9 stops the tail loop and abandons the engine without Close — the
// in-process stand-in for SIGKILL (the goroutine cannot be killed
// mid-instruction, but the durable state it leaves is the same: WAL
// synced through the last applied record, nothing else).
func (r *replica) kill9() {
	r.cancel()
	<-r.done
}

func (r *replica) shutdown() {
	r.cancel()
	<-r.done
	if eng := r.fol.Engine(); eng != nil {
		eng.Close()
	}
}

// queryable reports whether the replica serves the given movie title.
func (r *replica) queryable(title string) bool {
	req, _ := http.NewRequest(http.MethodGet, "/v1/vector?table=movies&column=title&text="+queryEscape(title), nil)
	rec := newRecorder()
	r.hs.ServeHTTP(rec, req)
	return rec.status == http.StatusOK
}

func (r *replica) readyz() (int, map[string]any) {
	req, _ := http.NewRequest(http.MethodGet, "/readyz", nil)
	rec := newRecorder()
	r.hs.ServeHTTP(rec, req)
	var body map[string]any
	_ = json.Unmarshal(rec.buf.Bytes(), &body)
	return rec.status, body
}

// recorder is a minimal ResponseWriter (httptest.NewRecorder works too;
// this keeps the handler path identical to production's statusWriter
// wrapping without importing httptest in several helpers).
type recorder struct {
	hdr    http.Header
	buf    bytes.Buffer
	status int
}

func newRecorder() *recorder                    { return &recorder{hdr: make(http.Header), status: http.StatusOK} }
func (r *recorder) Header() http.Header         { return r.hdr }
func (r *recorder) WriteHeader(c int)           { r.status = c }
func (r *recorder) Write(b []byte) (int, error) { return r.buf.Write(b) }

func queryEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' {
			out = append(out, '+')
		} else {
			out = append(out, s[i])
		}
	}
	return string(out)
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("timed out after %s waiting for %s", timeout, what)
}

// --- tests -----------------------------------------------------------------

func TestReplicaTailsPrimary(t *testing.T) {
	p := startPrimary(t, t.TempDir(), testStorageOpts(nil))
	defer p.shutdown()
	r := startReplica(t, t.TempDir(), p.url(), nil)
	defer r.shutdown()

	// A fresh replica is caught up (seq 0 == seq 0) and ready.
	waitFor(t, 10*time.Second, "initial catch-up", func() bool { return r.fol.Status().Ready })
	if code, body := r.readyz(); code != http.StatusOK {
		t.Fatalf("readyz on caught-up replica: %d %v", code, body)
	}

	// Writes on the replica are refused with the structured envelope.
	req, _ := http.NewRequest(http.MethodPost, "/v1/insert",
		bytes.NewReader([]byte(`{"table":"movies","values":[1,"x"]}`)))
	rec := newRecorder()
	r.hs.ServeHTTP(rec, req)
	if rec.status != http.StatusForbidden {
		t.Fatalf("replica insert: status %d body %s, want 403", rec.status, rec.buf.String())
	}
	var env struct {
		Error struct{ Code string }
	}
	if json.Unmarshal(rec.buf.Bytes(), &env); env.Error.Code != "read_only" {
		t.Fatalf("replica insert error = %s, want read_only", rec.buf.String())
	}

	// Acked primary inserts stream over and become queryable.
	titles := []string{"replica premiere one", "replica premiere two", "replica premiere three"}
	for i, title := range titles {
		p.insert(9001+i, title)
	}
	for _, title := range titles {
		title := title
		waitFor(t, 10*time.Second, "replication of "+title, func() bool { return r.queryable(title) })
	}
	st := r.fol.Status()
	if st.AppliedSeq != uint64(len(titles)) || st.LagSeqs != 0 {
		t.Fatalf("replica status after catch-up = %+v", st)
	}
	if st.Resyncs != 0 {
		t.Fatalf("unexpected resyncs on a clean tail: %+v", st)
	}
}

// TestFollowerCatchUpAcrossCompaction is the satellite scenario: the
// follower disconnects, the primary folds its segment chain (MaxSegments
// exceeded → compaction) and prunes the replication window past the
// follower's resume point, and the reconnecting follower must fall back
// to a full re-sync — not error, not wedge.
func TestFollowerCatchUpAcrossCompaction(t *testing.T) {
	p := startPrimary(t, t.TempDir(), testStorageOpts(func(o *retro.StorageOptions) {
		o.MaxSegments = 1
		o.ReplLog = 2
	}))
	defer p.shutdown()
	r := startReplica(t, t.TempDir(), p.url(), nil)
	defer r.shutdown()
	waitFor(t, 10*time.Second, "initial catch-up", func() bool { return r.fol.Status().Ready })

	// Disconnect the follower, then move the primary far past it:
	// checkpoints after every insert exceed MaxSegments immediately, so
	// the chain compacts, and >ReplLog inserts prune the in-memory
	// window past the follower's resume seq.
	r.kill9()
	titles := []string{"fold one", "fold two", "fold three", "fold four"}
	for i, title := range titles {
		p.insert(9100+i, title)
		if _, err := p.srv.Checkpoint(); err != nil {
			t.Fatalf("primary checkpoint: %v", err)
		}
	}
	if compactions := p.eng.Stats().Compactions; compactions == 0 {
		t.Fatal("test setup: primary never compacted")
	}

	// Reconnect: the resume seq is gone, so the primary answers 410 and
	// the follower re-syncs, ending caught up with every row.
	r.run()
	for _, title := range titles {
		title := title
		waitFor(t, 20*time.Second, "post-compaction replication of "+title, func() bool { return r.queryable(title) })
	}
	if st := r.fol.Status(); st.Resyncs == 0 {
		t.Fatalf("follower caught up across compaction without a re-sync: %+v", st)
	} else if !st.Ready {
		t.Fatalf("follower not ready after re-sync: %+v", st)
	}
}

// TestReadyzLagPolicy: a replica that loses its primary keeps serving
// reads, but /readyz degrades once the configured max lag is exceeded —
// and recovers when the primary returns (the caught-up heartbeat resets
// the lag clock even with no new writes).
func TestReadyzLagPolicy(t *testing.T) {
	p := startPrimary(t, t.TempDir(), testStorageOpts(nil))
	defer p.shutdown()
	r := startReplica(t, t.TempDir(), p.url(), func(c *repl.Config) {
		c.MaxLag = 300 * time.Millisecond
	})
	defer r.shutdown()

	p.insert(9200, "lag policy premiere")
	waitFor(t, 10*time.Second, "replication", func() bool { return r.queryable("lag policy premiere") })

	p.kill9()
	waitFor(t, 10*time.Second, "lag policy to trip", func() bool {
		code, _ := r.readyz()
		return code == http.StatusServiceUnavailable
	})
	// Degraded means not-ready for load balancers — reads still serve.
	if !r.queryable("lag policy premiere") {
		t.Fatal("degraded replica stopped serving reads")
	}
	if _, body := r.readyz(); body["reason"] == nil {
		t.Fatalf("degraded readyz carries no reason: %v", body)
	}

	p.restart()
	waitFor(t, 20*time.Second, "readiness after primary restart", func() bool {
		code, _ := r.readyz()
		return code == http.StatusOK
	})
}

// TestChaosKillSweep is the kill -9 interleaving sweep: primary and
// follower die without warning at different points of the replication
// lifecycle. Invariant, every time: every insert acked by the primary is
// eventually queryable on the follower, recovery needs no manual
// intervention, and neither side wedges.
func TestChaosKillSweep(t *testing.T) {
	t.Run("primary-dies-midstream", func(t *testing.T) {
		p := startPrimary(t, t.TempDir(), testStorageOpts(nil))
		defer p.shutdown()
		r := startReplica(t, t.TempDir(), p.url(), nil)
		defer r.shutdown()

		p.insert(9300, "survivor one")
		waitFor(t, 10*time.Second, "replication", func() bool { return r.queryable("survivor one") })

		p.kill9()
		// The caught-up replica keeps serving within its lag budget.
		if code, body := r.readyz(); code != http.StatusOK {
			t.Fatalf("readyz right after primary death: %d %v", code, body)
		}
		if !r.queryable("survivor one") {
			t.Fatal("replica lost data when the primary died")
		}

		p.restart()
		p.insert(9301, "survivor two")
		waitFor(t, 20*time.Second, "replication after primary restart", func() bool { return r.queryable("survivor two") })
	})

	t.Run("follower-dies-midtail", func(t *testing.T) {
		p := startPrimary(t, t.TempDir(), testStorageOpts(nil))
		defer p.shutdown()
		dir := t.TempDir()
		r := startReplica(t, dir, p.url(), nil)

		p.insert(9310, "before the crash")
		waitFor(t, 10*time.Second, "replication", func() bool { return r.queryable("before the crash") })
		r.kill9() // abandoned un-Closed: durable state only

		// The primary keeps taking writes while the follower is dead.
		p.insert(9311, "while it was down")

		// A rebooted follower on the same directory recovers locally and
		// resumes from its own WAL seq — exactly-once, no re-sync needed.
		r2 := startReplica(t, dir, p.url(), nil)
		defer r2.shutdown()
		for _, title := range []string{"before the crash", "while it was down"} {
			title := title
			waitFor(t, 20*time.Second, "replication of "+title, func() bool { return r2.queryable(title) })
		}
		if st := r2.fol.Status(); st.Resyncs != 0 {
			t.Fatalf("local recovery forced a re-sync: %+v", st)
		}
	})

	t.Run("follower-dies-midresync", func(t *testing.T) {
		p := startPrimary(t, t.TempDir(), testStorageOpts(nil))
		defer p.shutdown()
		dir := t.TempDir()
		r := startReplica(t, dir, p.url(), nil)

		p.insert(9320, "resync era premiere")
		waitFor(t, 10*time.Second, "replication", func() bool { return r.queryable("resync era premiere") })
		r.kill9()

		// A re-sync deletes the local MANIFEST before touching data files;
		// dying between that and the manifest rewrite leaves a directory
		// with data files but no manifest. Reproduce that state directly.
		if err := os.Remove(filepath.Join(dir, storage.ManifestName)); err != nil {
			t.Fatal(err)
		}

		// Reboot: no manifest → clean full sync, never a wedge or a
		// half-adopted directory.
		r2 := startReplica(t, dir, p.url(), nil)
		defer r2.shutdown()
		waitFor(t, 20*time.Second, "replication after re-sync", func() bool { return r2.queryable("resync era premiere") })
		if code, body := r2.readyz(); code != http.StatusOK {
			t.Fatalf("readyz after mid-resync recovery: %d %v", code, body)
		}
	})

	t.Run("primary-dies-after-checkpoint", func(t *testing.T) {
		p := startPrimary(t, t.TempDir(), testStorageOpts(nil))
		defer p.shutdown()
		r := startReplica(t, t.TempDir(), p.url(), nil)
		defer r.shutdown()

		p.insert(9330, "checkpointed row")
		if _, err := p.srv.Checkpoint(); err != nil {
			t.Fatalf("primary checkpoint: %v", err)
		}
		p.insert(9331, "post checkpoint row")
		p.kill9()
		p.restart()

		// Both the checkpointed row and the WAL-tail row survive the
		// SIGKILL on the primary and reach the follower; the seq space
		// never regresses, so the follower resumes without divergence.
		for _, title := range []string{"checkpointed row", "post checkpoint row"} {
			title := title
			waitFor(t, 20*time.Second, "replication of "+title, func() bool { return r.queryable(title) })
		}
		p.insert(9332, "second life row")
		waitFor(t, 20*time.Second, "replication after restart", func() bool { return r.queryable("second life row") })
	})
}

// TestStreamProtocolErrors exercises the primary handler's error paths
// directly: bad parameters, unknown files, and the 410 that drives the
// re-sync state machine.
func TestStreamProtocolErrors(t *testing.T) {
	p := startPrimary(t, t.TempDir(), testStorageOpts(func(o *retro.StorageOptions) { o.ReplLog = 1 }))
	defer p.shutdown()

	get := func(path string) (int, string) {
		resp, err := http.Get(p.url() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/repl/v1/wal?from=notanumber"); code != http.StatusBadRequest {
		t.Fatalf("bad from: %d %s", code, body)
	}
	if code, body := get("/repl/v1/file?name=../../etc/passwd"); code != http.StatusBadRequest {
		t.Fatalf("path traversal: %d %s", code, body)
	}
	if code, body := get("/repl/v1/file?name=nope.snap"); code != http.StatusNotFound {
		t.Fatalf("unreferenced file: %d %s", code, body)
	}

	// Drive the window past seq 1 (cap 1 keeps only the latest record),
	// then ask to resume from 0: pruned → 410 seq_compacted.
	p.insert(9400, "window one")
	p.insert(9401, "window two")
	code, body := get(fmt.Sprintf("/repl/v1/wal?from=%d&wait=0s", 0))
	if code != http.StatusGone {
		t.Fatalf("pruned resume: %d %s, want 410", code, body)
	}
	var env struct {
		Error struct{ Code string }
	}
	if json.Unmarshal([]byte(body), &env); env.Error.Code != "seq_compacted" {
		t.Fatalf("pruned resume error = %s, want seq_compacted", body)
	}

	// A resume inside the window streams the retained tail.
	resp, err := http.Get(p.url() + "/repl/v1/wal?from=1&wait=0s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-window resume: %d", resp.StatusCode)
	}
	lastSeq, recs, err := storage.ReadStream(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 2 || len(recs) != 1 || recs[0].Seq != 2 {
		t.Fatalf("in-window stream: lastSeq=%d recs=%d", lastSeq, len(recs))
	}
}
