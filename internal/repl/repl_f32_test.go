package repl_test

import (
	"testing"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/repl"
)

func f32StorageOpts(extra func(*retro.StorageOptions)) retro.StorageOptions {
	return testStorageOpts(func(o *retro.StorageOptions) {
		o.Config.Precision = retro.F32
		if extra != nil {
			extra(o)
		}
	})
}

// TestReplicationF32 runs the chaos scenarios with a float32 primary and
// follower: the follower's WAL tail re-repairs at float32 precision and
// converges on the primary's exact float32 words, a SIGKILL'd primary
// recovers its f32 store from disk, and a forced full re-sync ships the
// version-3 (precision-tagged) snapshot so the replacement engine comes
// up float32 too.
func TestReplicationF32(t *testing.T) {
	t.Run("tail-matches-primary-bitwise", func(t *testing.T) {
		p := startPrimary(t, t.TempDir(), f32StorageOpts(nil))
		defer p.shutdown()
		r := startReplica(t, t.TempDir(), p.url(), func(c *repl.Config) {
			c.Storage = f32StorageOpts(nil)
		})
		defer r.shutdown()
		waitFor(t, 10*time.Second, "initial catch-up", func() bool { return r.fol.Status().Ready })

		pStore := p.eng.Session().Model().Store()
		if pStore.Precision() != retro.F32 {
			t.Fatalf("primary store precision = %v, want F32", pStore.Precision())
		}
		if got := r.fol.Engine().Session().Model().Store().Precision(); got != retro.F32 {
			t.Fatalf("follower store precision = %v, want F32", got)
		}

		titles := []string{"f32 premiere one", "f32 premiere two", "f32 premiere three"}
		for i, title := range titles {
			p.insert(9500+i, title)
		}
		for _, title := range titles {
			title := title
			waitFor(t, 10*time.Second, "replication of "+title, func() bool { return r.queryable(title) })
		}

		// Both sides repaired the same ops from the same dataset through
		// the same deterministic solver, so the follower's float32 words
		// are bit-identical to the primary's.
		fStore := r.fol.Engine().Session().Model().Store()
		for _, title := range titles {
			key := "movies.title\x00" + title
			pid, ok := pStore.ID(key)
			if !ok {
				t.Fatalf("primary missing %q", key)
			}
			fid, ok := fStore.ID(key)
			if !ok {
				t.Fatalf("follower missing %q", key)
			}
			pv, fv := pStore.Vector32(pid), fStore.Vector32(fid)
			for i := range pv {
				if pv[i] != fv[i] {
					t.Fatalf("%q[%d]: primary %v, follower %v", title, i, pv[i], fv[i])
				}
			}
		}
	})

	t.Run("primary-sigkill-recovers-f32", func(t *testing.T) {
		p := startPrimary(t, t.TempDir(), f32StorageOpts(nil))
		defer p.shutdown()
		r := startReplica(t, t.TempDir(), p.url(), func(c *repl.Config) {
			c.Storage = f32StorageOpts(nil)
		})
		defer r.shutdown()

		p.insert(9510, "f32 survivor")
		waitFor(t, 10*time.Second, "replication", func() bool { return r.queryable("f32 survivor") })
		p.kill9()
		p.restart()
		if got := p.eng.Session().Model().Store().Precision(); got != retro.F32 {
			t.Fatalf("restarted primary store precision = %v, want F32", got)
		}
		p.insert(9511, "f32 second life")
		waitFor(t, 20*time.Second, "replication after restart", func() bool { return r.queryable("f32 second life") })
	})

	t.Run("full-resync-ships-f32-snapshot", func(t *testing.T) {
		p := startPrimary(t, t.TempDir(), f32StorageOpts(func(o *retro.StorageOptions) {
			o.MaxSegments = 1
			o.ReplLog = 2
		}))
		defer p.shutdown()
		r := startReplica(t, t.TempDir(), p.url(), func(c *repl.Config) {
			c.Storage = f32StorageOpts(nil)
		})
		defer r.shutdown()
		waitFor(t, 10*time.Second, "initial catch-up", func() bool { return r.fol.Status().Ready })

		// Move the primary past the follower's resume point while it is
		// down: checkpoint-per-insert compacts the chain and prunes the
		// replication window, forcing a full re-sync on reconnect.
		r.kill9()
		titles := []string{"f32 fold one", "f32 fold two", "f32 fold three", "f32 fold four"}
		for i, title := range titles {
			p.insert(9520+i, title)
			if _, err := p.srv.Checkpoint(); err != nil {
				t.Fatalf("primary checkpoint: %v", err)
			}
		}

		r.run()
		for _, title := range titles {
			title := title
			waitFor(t, 20*time.Second, "post-compaction replication of "+title, func() bool { return r.queryable(title) })
		}
		st := r.fol.Status()
		if st.Resyncs == 0 {
			t.Fatalf("follower caught up without the expected re-sync: %+v", st)
		}
		// The replacement engine was built from the primary's version-3
		// snapshot: the precision header byte must have carried over.
		if got := r.fol.Engine().Session().Model().Store().Precision(); got != retro.F32 {
			t.Fatalf("post-resync follower store precision = %v, want F32", got)
		}
	})
}
