package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/storage"
)

// Follower lifecycle defaults; all overridable through Config.
const (
	DefaultMaxLag     = 30 * time.Second
	DefaultBackoffMin = 100 * time.Millisecond
	DefaultBackoffMax = 5 * time.Second
)

// Follower states, exported through Status and /v1/stats.
const (
	StateSyncing      = "syncing"      // downloading the primary's storage directory
	StateTailing      = "tailing"      // connected, applying the WAL stream
	StateDisconnected = "disconnected" // primary unreachable, backing off
	StateResyncing    = "resyncing"    // resume seq compacted away; full re-sync
)

// Sentinel failures of one tail attempt that demand a full re-sync
// rather than a reconnect-and-resume.
var (
	// errSeqCompacted: the primary no longer retains records past our
	// applied seq (we sat disconnected across its compaction).
	errSeqCompacted = errors.New("repl: resume seq compacted away on primary")
	// errDiverged: the stream carried a seq we did not expect, or a batch
	// failed to apply — local state can no longer be trusted to be a
	// prefix of the primary's history.
	errDiverged = errors.New("repl: follower state diverged from primary")
)

// Config configures a Follower.
type Config struct {
	// Primary is the base URL of the primary's serving address, e.g.
	// "http://primary:8080". The /repl/v1/* endpoints are resolved under
	// it.
	Primary string
	// Dir is the local storage directory the follower mirrors into.
	Dir string
	// Dataset loads a fresh copy of the dataset the primary was built
	// from. Recovery replays segment rows INTO this database, so every
	// (re-)sync needs an unmodified copy — reusing an already-replayed
	// one would double-insert.
	Dataset func() (*retro.DB, *retro.Embedding, error)
	// Storage is passed through to retro.OpenStorage.
	Storage retro.StorageOptions

	// MaxLag gates readiness: once caught up, the follower reports
	// not-ready when it has gone this long without being caught up to
	// the primary's high-water mark. 0 selects DefaultMaxLag; negative
	// disables the time gate (a follower that lost its primary keeps
	// serving reads indefinitely).
	MaxLag time.Duration
	// MaxLagSeqs additionally gates readiness on the number of records
	// the follower is behind. 0 disables the seq gate.
	MaxLagSeqs uint64

	// PollWait is the long-poll duration requested from the primary.
	// 0 selects DefaultPollWait.
	PollWait time.Duration
	// BackoffMin/BackoffMax bound the jittered exponential reconnect
	// backoff. Zero values select the defaults.
	BackoffMin time.Duration
	BackoffMax time.Duration

	// Client is the HTTP client used for all primary traffic; nil builds
	// one with no global timeout (long-polls outlive any sane timeout;
	// cancellation is per-request via context).
	Client *http.Client
	// Logger receives lifecycle events; nil uses slog.Default().
	Logger *slog.Logger
}

// Status is a point-in-time snapshot of the follower, the input to the
// /readyz lag policy and the replication section of /v1/stats.
type Status struct {
	State        string  `json:"state"`
	Primary      string  `json:"primary"`
	Connected    bool    `json:"connected"`
	AppliedSeq   uint64  `json:"applied_seq"`
	PrimarySeq   uint64  `json:"primary_seq"`
	LagSeqs      uint64  `json:"lag_seqs"`
	LagSeconds   float64 `json:"lag_seconds"`
	Resyncs      uint64  `json:"resyncs"`
	CaughtUpOnce bool    `json:"caught_up_once"`
	Ready        bool    `json:"ready"`
	Reason       string  `json:"reason,omitempty"`
	LastError    string  `json:"last_error,omitempty"`
}

// Follower mirrors a primary: Bootstrap establishes a local storage
// directory (recovering a previous one or downloading fresh), Run tails
// the WAL stream until the context is cancelled. All state needed by the
// readiness policy is behind one mutex and exposed via Status.
type Follower struct {
	cfg  Config
	log  *slog.Logger
	rng  *rand.Rand
	seed sync.Mutex // guards rng (Run goroutine + nothing else today, but cheap)

	// apply pushes one replicated batch through the serving write path
	// (insert + delta repair + view publish). Set by Attach; defaults to
	// the engine's session directly.
	apply func(table string, rows [][]retro.Value) error
	// swap installs a replacement engine after a re-sync (the serving
	// layer atomically swaps its session/engine pointers). Optional.
	swap func(*retro.StorageEngine)

	mu           sync.Mutex
	engine       *retro.StorageEngine
	state        string
	connected    bool
	appliedSeq   uint64
	primarySeq   uint64
	lastCaughtUp time.Time
	caughtUpOnce bool
	resyncs      uint64
	lastErr      error
}

// NewFollower validates the config and fills defaults. Call Bootstrap
// before Run.
func NewFollower(cfg Config) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, errors.New("repl: Config.Primary is required")
	}
	if _, err := url.Parse(cfg.Primary); err != nil {
		return nil, fmt.Errorf("repl: invalid primary URL: %w", err)
	}
	if cfg.Dir == "" {
		return nil, errors.New("repl: Config.Dir is required")
	}
	if cfg.Dataset == nil {
		return nil, errors.New("repl: Config.Dataset is required")
	}
	cfg.Primary = strings.TrimRight(cfg.Primary, "/")
	if cfg.MaxLag == 0 {
		cfg.MaxLag = DefaultMaxLag
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = DefaultPollWait
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = DefaultBackoffMin
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = DefaultBackoffMax
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	f := &Follower{
		cfg:   cfg,
		log:   log,
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
		state: StateSyncing,
	}
	f.apply = f.applyDefault
	return f, nil
}

// Attach overrides the batch-apply and engine-swap hooks. The serving
// layer points apply at its replicated-write path (which also publishes
// views) and swap at its engine-replacement; either may be nil to keep
// the default (apply straight through the session; no swap notification).
func (f *Follower) Attach(apply func(table string, rows [][]retro.Value) error, swap func(*retro.StorageEngine)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if apply != nil {
		f.apply = apply
	}
	f.swap = swap
}

// Engine returns the follower's current storage engine (replaced on
// re-sync).
func (f *Follower) Engine() *retro.StorageEngine {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.engine
}

func (f *Follower) applyDefault(table string, rows [][]retro.Value) error {
	eng := f.Engine()
	if eng == nil {
		return errors.New("repl: no engine to apply to")
	}
	return eng.Session().InsertBatch(table, rows)
}

// Status reports the follower's replication state and applies the
// readiness policy:
//
//   - never caught up since boot → not ready (still syncing);
//   - lag_seconds exceeds MaxLag (when enabled) → not ready;
//   - lag_seqs exceeds MaxLagSeqs (when enabled) → not ready;
//   - otherwise ready — including while the primary is down, as long as
//     the lag gates hold: a replica's job is serving reads through the
//     primary's failure, not mirroring its liveness.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := Status{
		State:        f.state,
		Primary:      f.cfg.Primary,
		Connected:    f.connected,
		AppliedSeq:   f.appliedSeq,
		PrimarySeq:   f.primarySeq,
		Resyncs:      f.resyncs,
		CaughtUpOnce: f.caughtUpOnce,
	}
	if f.lastErr != nil {
		s.LastError = f.lastErr.Error()
	}
	if f.primarySeq > f.appliedSeq {
		s.LagSeqs = f.primarySeq - f.appliedSeq
	}
	// Time lag: zero while connected and fully applied; otherwise the
	// time since we were last known caught up. While disconnected the
	// primary's high-water mark is unobservable, so wall-clock since the
	// last caught-up moment is the honest bound on staleness.
	caughtUpNow := f.connected && f.caughtUpOnce && s.LagSeqs == 0
	if f.caughtUpOnce && !caughtUpNow {
		s.LagSeconds = time.Since(f.lastCaughtUp).Seconds()
	}
	switch {
	case !f.caughtUpOnce:
		s.Reason = "replica has not caught up to the primary since boot"
	case f.cfg.MaxLag > 0 && s.LagSeconds > f.cfg.MaxLag.Seconds():
		s.Reason = fmt.Sprintf("replication lag %.1fs exceeds max %s", s.LagSeconds, f.cfg.MaxLag)
	case f.cfg.MaxLagSeqs > 0 && s.LagSeqs > f.cfg.MaxLagSeqs:
		s.Reason = fmt.Sprintf("replica is %d records behind (max %d)", s.LagSeqs, f.cfg.MaxLagSeqs)
	default:
		s.Ready = true
	}
	return s
}

// Bootstrap establishes the follower's local storage: a directory with a
// valid manifest is recovered exactly like a local restart (then Run
// resumes tailing from its own WAL seq — exactly-once, because seqs are
// aligned with the primary's); anything else falls back to a full sync,
// retried with backoff until it succeeds or ctx ends.
func (f *Follower) Bootstrap(ctx context.Context) error {
	if _, err := storage.ReadManifest(f.cfg.Dir); err == nil {
		eng, rerr := f.openLocal()
		if rerr == nil {
			f.installEngine(eng)
			f.log.Info("replica recovered local storage", "dir", f.cfg.Dir, "applied_seq", eng.WALSeq())
			return nil
		}
		f.log.Warn("replica local recovery failed; falling back to full sync", "error", rerr)
	} else if !errors.Is(err, os.ErrNotExist) {
		f.log.Warn("replica manifest unreadable; falling back to full sync", "error", err)
	}

	backoff := f.cfg.BackoffMin
	for {
		err := f.fullSync(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f.setError(err)
		f.log.Warn("replica full sync failed; retrying", "error", err, "backoff", backoff)
		if !f.sleep(ctx, backoff) {
			return ctx.Err()
		}
		backoff = f.nextBackoff(backoff)
	}
}

func (f *Follower) openLocal() (*retro.StorageEngine, error) {
	db, emb, err := f.cfg.Dataset()
	if err != nil {
		return nil, fmt.Errorf("repl: loading dataset: %w", err)
	}
	return retro.OpenStorage(f.cfg.Dir, db, emb, f.cfg.Storage)
}

func (f *Follower) installEngine(eng *retro.StorageEngine) {
	f.mu.Lock()
	f.engine = eng
	f.appliedSeq = eng.WALSeq()
	f.state = StateTailing
	swap := f.swap
	f.mu.Unlock()
	if swap != nil {
		swap(eng)
	}
}

// Run tails the primary until ctx ends: long-poll, apply, repeat.
// Transport failures back off with jitter and resume from the follower's
// own WAL seq; a compacted resume point or divergent stream triggers a
// full re-sync. Run never returns an error — a replica's failure mode is
// lag (visible in Status), not termination.
func (f *Follower) Run(ctx context.Context) {
	backoff := f.cfg.BackoffMin
	for ctx.Err() == nil {
		err := f.tailOnce(ctx)
		switch {
		case err == nil:
			backoff = f.cfg.BackoffMin
		case ctx.Err() != nil:
			return
		case errors.Is(err, errSeqCompacted) || errors.Is(err, errDiverged):
			f.setState(StateResyncing)
			f.setError(err)
			f.log.Warn("replica falling back to full re-sync", "cause", err)
			f.mu.Lock()
			f.resyncs++
			f.mu.Unlock()
			if serr := f.fullSync(ctx); serr != nil {
				if ctx.Err() != nil {
					return
				}
				f.setError(serr)
				f.log.Warn("replica re-sync failed; backing off", "error", serr, "backoff", backoff)
				if !f.sleep(ctx, backoff) {
					return
				}
				backoff = f.nextBackoff(backoff)
			} else {
				backoff = f.cfg.BackoffMin
			}
		default:
			f.setDisconnected(err)
			if !f.sleep(ctx, backoff) {
				return
			}
			backoff = f.nextBackoff(backoff)
		}
	}
}

// tailOnce performs one long-poll round trip and applies its records.
// nil means progress (records applied, or a clean caught-up heartbeat);
// errSeqCompacted/errDiverged demand a re-sync; anything else is a
// transient transport failure.
func (f *Follower) tailOnce(ctx context.Context) error {
	f.mu.Lock()
	from := f.appliedSeq
	apply := f.apply
	f.mu.Unlock()
	u := fmt.Sprintf("%s/repl/v1/wal?from=%d&wait=%s", f.cfg.Primary, from, f.cfg.PollWait)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return errSeqCompacted
	default:
		return fmt.Errorf("repl: primary answered %s: %s", resp.Status, readErrorEnvelope(resp.Body))
	}
	lastSeq, recs, err := storage.ReadStream(resp.Body)
	if err != nil {
		// Corrupt or truncated stream: drop it and re-poll; nothing was
		// applied (ReadStream is all-or-nothing).
		return fmt.Errorf("repl: reading stream: %w", err)
	}
	for _, rec := range recs {
		f.mu.Lock()
		want := f.appliedSeq + 1
		f.mu.Unlock()
		if rec.Seq != want {
			return fmt.Errorf("%w: stream carried seq %d, expected %d", errDiverged, rec.Seq, want)
		}
		if err := apply(rec.Batch.Table, rec.Batch.Rows); err != nil {
			var repair *retro.RepairError
			if errors.As(err, &repair) {
				// Committed and logged; only the incremental repair went
				// stale. The next applied batch full-Resolves — same
				// self-healing contract as a local write.
				f.log.Warn("replicated batch committed with stale repair", "seq", rec.Seq, "error", err)
			} else {
				return fmt.Errorf("%w: applying seq %d: %v", errDiverged, rec.Seq, err)
			}
		}
		f.mu.Lock()
		f.appliedSeq = rec.Seq
		f.primarySeq = max(f.primarySeq, rec.Seq)
		f.mu.Unlock()
	}
	f.mu.Lock()
	f.connected = true
	f.state = StateTailing
	f.lastErr = nil
	f.primarySeq = max(f.primarySeq, lastSeq)
	if f.appliedSeq >= lastSeq {
		f.lastCaughtUp = time.Now()
		f.caughtUpOnce = true
	}
	f.mu.Unlock()
	return nil
}

// fullSync discards local storage and rebuilds it from the primary:
//
//  1. fetch the primary's manifest;
//  2. close the old engine and delete the local MANIFEST FIRST — from
//     here until step 5 the directory deliberately has no manifest, so a
//     crash at any point leaves a state the next boot resolves by doing
//     another clean full sync (never a manifest pointing at mixed
//     local/primary file contents, which share epoch-derived names);
//  3. delete stale data files and download the base + segments;
//  4. create a fresh WAL whose base seq is the manifest's high-water
//     mark (the live tail arrives over the stream, not as a file);
//  5. write the manifest — the commit point — then recover from the
//     directory exactly as a local restart would, against a fresh
//     dataset copy.
func (f *Follower) fullSync(ctx context.Context) error {
	f.setState(StateSyncing)
	man, err := f.fetchManifest(ctx)
	if err != nil {
		return err
	}

	f.mu.Lock()
	old := f.engine
	f.engine = nil
	f.mu.Unlock()
	if old != nil {
		old.Close()
	}
	if err := os.MkdirAll(f.cfg.Dir, 0o755); err != nil {
		return err
	}
	if err := os.Remove(filepath.Join(f.cfg.Dir, storage.ManifestName)); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("repl: clearing local manifest: %w", err)
	}
	if err := f.clearDataFiles(); err != nil {
		return err
	}

	for _, name := range append([]string{man.Base}, man.Segments...) {
		if err := f.downloadFile(ctx, name); err != nil {
			return err
		}
	}
	wal, err := storage.CreateWAL(filepath.Join(f.cfg.Dir, man.WAL), man.WALSeq, f.cfg.Storage.Sys)
	if err != nil {
		return fmt.Errorf("repl: creating WAL: %w", err)
	}
	if err := wal.Close(); err != nil {
		return err
	}
	local := &storage.Manifest{Epoch: man.Epoch, WALSeq: man.WALSeq, Base: man.Base, WAL: man.WAL, Segments: man.Segments}
	if err := storage.WriteManifest(f.cfg.Dir, local, f.cfg.Storage.Sys); err != nil {
		return fmt.Errorf("repl: writing manifest: %w", err)
	}

	eng, err := f.openLocal()
	if err != nil {
		return fmt.Errorf("repl: recovering synced directory: %w", err)
	}
	f.installEngine(eng)
	f.mu.Lock()
	f.primarySeq = max(f.primarySeq, man.LastSeq)
	f.mu.Unlock()
	f.log.Info("replica full sync complete",
		"epoch", man.Epoch, "segments", len(man.Segments), "applied_seq", eng.WALSeq())
	return nil
}

// clearDataFiles removes stale snapshot/segment/WAL files before a
// download. Names are epoch-derived on both sides, so a leftover local
// file could collide with (and a crash could interleave with) a primary
// file of the same name; starting from an empty directory removes the
// ambiguity. Unknown files are left alone.
func (f *Follower) clearDataFiles() error {
	entries, err := os.ReadDir(f.cfg.Dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch filepath.Ext(e.Name()) {
		case ".snap", ".seg", ".wal", ".tmp":
			if err := os.Remove(filepath.Join(f.cfg.Dir, e.Name())); err != nil && !errors.Is(err, os.ErrNotExist) {
				return fmt.Errorf("repl: clearing %s: %w", e.Name(), err)
			}
		}
	}
	return nil
}

func (f *Follower) fetchManifest(ctx context.Context) (*manifestResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Primary+"/repl/v1/manifest", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("repl: manifest fetch answered %s: %s", resp.Status, readErrorEnvelope(resp.Body))
	}
	var man manifestResponse
	if err := json.NewDecoder(resp.Body).Decode(&man); err != nil {
		return nil, fmt.Errorf("repl: decoding manifest: %w", err)
	}
	if man.Base == "" || man.WAL == "" {
		return nil, errors.New("repl: primary manifest names no base or WAL")
	}
	return &man, nil
}

func (f *Follower) downloadFile(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		f.cfg.Primary+"/repl/v1/file?name="+url.QueryEscape(name), nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Includes the checkpoint race: the manifest we read named a file
		// a compaction just retired. The caller retries the whole sync
		// against the fresh manifest.
		return fmt.Errorf("repl: downloading %s answered %s: %s", name, resp.Status, readErrorEnvelope(resp.Body))
	}
	return storage.WriteFileAtomic(filepath.Join(f.cfg.Dir, name), f.cfg.Storage.Sys, func(w io.Writer) error {
		_, err := io.Copy(w, resp.Body)
		return err
	})
}

// readErrorEnvelope extracts code+message from a structured error
// response body, falling back to the raw text.
func readErrorEnvelope(r io.Reader) string {
	body, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(body) == 0 {
		return "(no body)"
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error.Code != "" {
		return env.Error.Code + ": " + env.Error.Message
	}
	return strings.TrimSpace(string(body))
}

func (f *Follower) setState(state string) {
	f.mu.Lock()
	f.state = state
	f.connected = false
	f.mu.Unlock()
}

func (f *Follower) setDisconnected(err error) {
	f.mu.Lock()
	f.state = StateDisconnected
	f.connected = false
	f.lastErr = err
	f.mu.Unlock()
}

func (f *Follower) setError(err error) {
	f.mu.Lock()
	f.lastErr = err
	f.mu.Unlock()
}

// nextBackoff doubles up to the cap.
func (f *Follower) nextBackoff(cur time.Duration) time.Duration {
	next := cur * 2
	if next > f.cfg.BackoffMax {
		next = f.cfg.BackoffMax
	}
	return next
}

// sleep waits for d plus up to 50% jitter (decorrelating a fleet of
// followers reconnecting to a rebooted primary), or until ctx ends.
// Reports whether the wait completed (false: ctx cancelled).
func (f *Follower) sleep(ctx context.Context, d time.Duration) bool {
	f.seed.Lock()
	jitter := time.Duration(f.rng.Int63n(int64(d)/2 + 1))
	f.seed.Unlock()
	timer := time.NewTimer(d + jitter)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
