// Package repl implements streaming WAL replication between retro-serve
// processes: a primary exposes its storage engine's durable state over
// HTTP, and a follower bootstraps a byte-identical local copy, recovers
// from it exactly as a local restart would, then tails the primary's
// write-ahead log — applying each committed batch through the normal
// delta-repair insert path and republishing serving views, so reads
// survive the primary dying.
//
// The protocol is three endpoints, all addressed by WAL sequence number:
//
//	GET /repl/v1/manifest         current manifest + WAL high-water mark (JSON)
//	GET /repl/v1/file?name=N      one manifest-referenced file (base or segment)
//	GET /repl/v1/wal?from=S&wait=D long-poll stream of records with seq > S
//
// The stream endpoint answers immediately when records past S are
// retained, blocks up to `wait` for the next durable append otherwise,
// and returns 410 Gone with code "seq_compacted" when S has been pruned
// from the primary's replication window (the follower sat disconnected
// across checkpoints or a compaction) — the follower's cue to fall back
// to a full re-sync. Record frames on the wire are CRC-checked exactly
// like on-disk WAL records.
package repl

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	retro "github.com/retrodb/retro"
	"github.com/retrodb/retro/internal/storage"
)

const (
	// DefaultPollWait is how long the stream endpoint blocks for new
	// records when the follower is caught up (and the default a follower
	// requests).
	DefaultPollWait = 25 * time.Second
	// MaxPollWait caps the wait a client may request, keeping one
	// long-poll under common LB/proxy idle timeouts.
	MaxPollWait = 55 * time.Second
	// maxStreamBatch bounds records per stream response; a far-behind
	// follower catches up over several round trips.
	maxStreamBatch = 512
)

// Error codes carried in the {"error":{"code","message"}} envelope, the
// same shape the serving API uses.
const (
	codeSeqCompacted  = "seq_compacted"
	codeInvalidArg    = "invalid_argument"
	codeNotFound      = "not_found"
	codeUnavailable   = "replication_unavailable"
	codeMethodNotAllo = "method_not_allowed"
)

// manifestResponse is the /repl/v1/manifest payload.
type manifestResponse struct {
	Epoch    uint64   `json:"epoch"`
	WALSeq   uint64   `json:"wal_seq"`
	Base     string   `json:"base"`
	WAL      string   `json:"wal"`
	Segments []string `json:"segments"`
	LastSeq  uint64   `json:"last_seq"`
}

// PrimaryStats counts replication traffic served by this process.
type PrimaryStats struct {
	StreamRequests uint64 // /repl/v1/wal requests answered
	StreamRecords  uint64 // records shipped over all streams
	FileRequests   uint64 // base/segment downloads served
	Resyncs        uint64 // 410 responses (followers told to re-sync)
}

// Primary serves the replication API off a storage engine. The engine is
// resolved per request through a getter so a server whose engine can be
// swapped (a follower serving cascaded replication after a re-sync)
// always streams from the live one.
type Primary struct {
	engine func() *retro.StorageEngine
	log    *slog.Logger

	streamRequests atomic.Uint64
	streamRecords  atomic.Uint64
	fileRequests   atomic.Uint64
	resyncs        atomic.Uint64
}

// NewPrimary builds the replication handler. engine may return nil (no
// storage backing yet), which the handler reports as 503.
func NewPrimary(engine func() *retro.StorageEngine, log *slog.Logger) *Primary {
	if log == nil {
		log = slog.Default()
	}
	return &Primary{engine: engine, log: log}
}

// Stats returns traffic counters for this handler.
func (p *Primary) Stats() PrimaryStats {
	return PrimaryStats{
		StreamRequests: p.streamRequests.Load(),
		StreamRecords:  p.streamRecords.Load(),
		FileRequests:   p.fileRequests.Load(),
		Resyncs:        p.resyncs.Load(),
	}
}

func writeReplError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": msg},
	})
}

func (p *Primary) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeReplError(w, http.StatusMethodNotAllowed, codeMethodNotAllo, "replication endpoints are GET-only")
		return
	}
	eng := p.engine()
	if eng == nil {
		writeReplError(w, http.StatusServiceUnavailable, codeUnavailable, "this server has no storage engine to replicate from")
		return
	}
	switch r.URL.Path {
	case "/repl/v1/manifest":
		p.handleManifest(w, eng)
	case "/repl/v1/file":
		p.handleFile(w, r, eng)
	case "/repl/v1/wal":
		p.handleWAL(w, r, eng)
	default:
		writeReplError(w, http.StatusNotFound, codeNotFound, "unknown replication endpoint "+r.URL.Path)
	}
}

func (p *Primary) handleManifest(w http.ResponseWriter, eng *retro.StorageEngine) {
	man, lastSeq := eng.ReplicationState()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(manifestResponse{
		Epoch: man.Epoch, WALSeq: man.WALSeq,
		Base: man.Base, WAL: man.WAL, Segments: man.Segments,
		LastSeq: lastSeq,
	})
}

func (p *Primary) handleFile(w http.ResponseWriter, r *http.Request, eng *retro.StorageEngine) {
	name := r.URL.Query().Get("name")
	if name == "" || name != filepath.Base(name) {
		writeReplError(w, http.StatusBadRequest, codeInvalidArg, "name must be a bare manifest-referenced file name")
		return
	}
	f, err := eng.OpenReplicaFile(name)
	if err != nil {
		// Either never referenced, or a checkpoint retired it between the
		// follower reading the manifest and asking for the file; the
		// follower refetches the manifest and retries.
		writeReplError(w, http.StatusNotFound, codeNotFound, err.Error())
		return
	}
	defer f.Close()
	p.fileRequests.Add(1)
	if fi, err := f.Stat(); err == nil {
		w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := io.Copy(w, f); err != nil {
		p.log.Debug("replica file transfer aborted", "name", name, "error", err)
	}
}

func (p *Primary) handleWAL(w http.ResponseWriter, r *http.Request, eng *retro.StorageEngine) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeReplError(w, http.StatusBadRequest, codeInvalidArg, "from must be a WAL sequence number")
		return
	}
	wait := DefaultPollWait
	if s := q.Get("wait"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil || d < 0 {
			writeReplError(w, http.StatusBadRequest, codeInvalidArg, "wait must be a non-negative duration")
			return
		}
		wait = min(d, MaxPollWait)
	}
	p.streamRequests.Add(1)

	deadline := time.Now().Add(wait)
	var recs []storage.Record
	var lastSeq uint64
	for {
		// Arm the notification BEFORE checking for records: an append
		// between the check and the wait closes the channel we already
		// hold, so the wake-up cannot be missed.
		notify := eng.WALNotify()
		var ok bool
		recs, lastSeq, ok = eng.RecordsSince(from, maxStreamBatch)
		if !ok {
			p.resyncs.Add(1)
			writeReplError(w, http.StatusGone, codeSeqCompacted,
				fmt.Sprintf("records after seq %d are no longer retained (window starts past it); run a full re-sync", from))
			return
		}
		if len(recs) > 0 {
			break
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break // caught-up heartbeat: empty stream carrying lastSeq
		}
		timer := time.NewTimer(remaining)
		select {
		case <-notify:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := storage.WriteStream(w, lastSeq, recs); err != nil {
		p.log.Debug("replication stream aborted", "from", from, "error", err)
		return
	}
	p.streamRecords.Add(uint64(len(recs)))
}
