package retro

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/retrodb/retro/internal/storage"
)

// Crash-recovery harness. A "crash" is simulated by failing a chosen
// durability call (fsync or rename) and every one after it, then
// abandoning the engine where it stands: anything the engine cleaned up
// before the failure is equivalent to crashing slightly earlier, and
// anything it never got to fsync may or may not have reached the disk.
// Recovery then reopens the directory with real syscalls and must
// satisfy:
//
//	P1 (durability)  — every acknowledged insert is present; unacked
//	                   inserts may be present or absent.
//	P2 (determinism) — two recoveries of the same directory produce
//	                   bitwise-identical models.

// faultSys counts durability calls (fsync + rename, in engine call
// order) and fails call number failAt and every later one.
type faultSys struct {
	calls  int
	failAt int
}

func (f *faultSys) bump() error {
	f.calls++
	if f.calls >= f.failAt {
		return errors.New("injected crash")
	}
	return nil
}

func (f *faultSys) sys() *storage.Sys {
	return &storage.Sys{
		Fsync: func(file *os.File) error {
			if err := f.bump(); err != nil {
				return err
			}
			return file.Sync()
		},
		Rename: func(oldpath, newpath string) error {
			if err := f.bump(); err != nil {
				return err
			}
			return os.Rename(oldpath, newpath)
		},
	}
}

// crashWorkload drives inserts and periodic checkpoints against dir
// until the injected fault fires, and returns the titles whose inserts
// were acknowledged. An error return from any step ends the run (the
// crash). Title rows use primary keys 100+i so reruns never collide
// with the fixture.
func crashWorkload(t *testing.T, dir string, sys *storage.Sys) (acked []string) {
	t.Helper()
	e, err := OpenStorage(dir, fixtureDB(t), fixtureEmbedding(), StorageOptions{Sys: sys})
	if err != nil {
		return nil // crashed during open: nothing was acknowledged
	}
	defer func() {
		_ = e.Close() // abandon: sync errors are part of the crash
	}()
	titles := []string{"matrix", "alien", "brazil", "stalker", "playtime", "yojimbo", "ran", "ikiru"}
	for i, title := range titles {
		err := e.Session().Insert("movies", []Value{Int(int64(100 + i)), Text(title), Text("usa")})
		if err != nil {
			return acked
		}
		acked = append(acked, title)
		if (i+1)%3 == 0 {
			if _, err := e.Checkpoint(); err != nil {
				return acked
			}
		}
	}
	return acked
}

// recoverVectors opens dir cleanly and returns word -> vector copies.
func recoverVectors(t *testing.T, dir string) (map[string][]float64, []string) {
	t.Helper()
	e, err := OpenStorage(dir, fixtureDB(t), fixtureEmbedding(), StorageOptions{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer e.Close()
	store := e.Session().Model().Store()
	out := make(map[string][]float64, store.Len())
	for id, w := range store.Words() {
		v := store.Vector(id)
		cp := make([]float64, len(v))
		copy(cp, v)
		out[w] = cp
	}
	var titles []string
	tbl := e.Session().DB().MustTable("movies")
	for i := 0; i < tbl.NumRows(); i++ {
		titles = append(titles, tbl.Row(i)[1].Str)
	}
	return out, titles
}

// TestStorageCrashAtEveryDurabilityPoint sweeps the injected failure
// across the first N durability calls of the workload — covering fresh
// start, WAL appends, segment writes, WAL rotation, manifest renames
// and the windows between them — and asserts P1 and P2 after each.
func TestStorageCrashAtEveryDurabilityPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is slow")
	}
	const sweep = 28 // past the second checkpoint's manifest rename
	for failAt := 1; failAt <= sweep; failAt++ {
		fs := &faultSys{failAt: failAt}
		dir := t.TempDir()
		acked := crashWorkload(t, dir, fs.sys())
		if fs.calls < failAt {
			// The whole workload fit under the fault point: a clean run,
			// still worth the recovery checks below.
			t.Logf("failAt=%d: workload completed (%d durability calls)", failAt, fs.calls)
		}

		vecs, titles := recoverVectors(t, dir)
		have := map[string]bool{}
		for _, title := range titles {
			have[title] = true
		}
		// P1: every acknowledged row survived.
		for _, title := range acked {
			if !have[title] {
				t.Fatalf("failAt=%d: acked insert %q lost (recovered rows: %v)", failAt, title, titles)
			}
			if _, ok := vecs["movies.title\x00"+title]; !ok {
				t.Fatalf("failAt=%d: acked insert %q missing from the recovered model", failAt, title)
			}
		}
		// P2: recovery is deterministic.
		vecs2, _ := recoverVectors(t, dir)
		if len(vecs) != len(vecs2) {
			t.Fatalf("failAt=%d: recovery vocabularies differ: %d vs %d", failAt, len(vecs), len(vecs2))
		}
		for w, a := range vecs {
			b := vecs2[w]
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("failAt=%d: recovery not deterministic at %q[%d]: %v vs %v", failAt, w, i, a[i], b[i])
				}
			}
		}
	}
}

// TestStorageRecoveryFidelity compares the recovered model against the
// live writer it replaced: with the workload's touched rows carried at
// full float64 precision in the segments, a probe query must rank the
// same words with the same scores up to the base snapshot's float32
// rounding of never-touched rows.
func TestStorageRecoveryFidelity(t *testing.T) {
	dir := t.TempDir()
	e := openFixtureStorage(t, dir, StorageOptions{})
	s := e.Session()
	for i, title := range []string{"matrix", "alien", "brazil"} {
		if err := s.Insert("movies", []Value{Int(int64(100 + i)), Text(title), Text("france")}); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			if _, err := e.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	liveStore := s.Model().Store()
	probe, ok := liveStore.VectorOf("movies.title\x00matrix")
	if !ok {
		t.Fatal("probe vector missing from live store")
	}
	query := make([]float64, len(probe))
	copy(query, probe)
	liveScores := map[string]float64{}
	for _, m := range liveStore.TopKExact(query, liveStore.Len(), nil) {
		liveScores[m.Word] = m.Score
	}
	e.Close()

	e2 := openFixtureStorage(t, dir, StorageOptions{})
	defer e2.Close()
	recStore := e2.Session().Model().Store()
	recovered := recStore.TopKExact(query, recStore.Len(), nil)
	if len(recovered) != len(liveScores) {
		t.Fatalf("recovered ranking has %d words, live had %d", len(recovered), len(liveScores))
	}
	for _, m := range recovered {
		live, ok := liveScores[m.Word]
		if !ok {
			t.Fatalf("recovered ranking contains unknown word %q", m.Word)
		}
		if math.Abs(m.Score-live) > 1e-5 {
			t.Fatalf("score for %q drifted: live %v, recovered %v", m.Word, live, m.Score)
		}
	}
}

// TestStorageRecoverySweepsCrashWindowDebris constructs the orphan-file
// states an interrupted checkpoint can leave behind and asserts recovery
// ignores and removes them.
func TestStorageRecoverySweepsCrashWindowDebris(t *testing.T) {
	dir := t.TempDir()
	e := openFixtureStorage(t, dir, StorageOptions{})
	if err := e.Session().Insert("movies", []Value{Int(100), Text("matrix"), Text("usa")}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	e.Close()

	// Debris: an orphan segment and rotated log from a checkpoint whose
	// manifest rename never happened, a stale log the delete skipped,
	// a manifest temp file, and garbage appended to the live log's tail
	// (a torn final record).
	debris := []string{"seg-000009.seg", "base-000009.snap", "MANIFEST.tmp777"}
	for _, name := range debris {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	orphanWAL, err := storage.CreateWAL(filepath.Join(dir, "wal-000009.wal"), 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	orphanWAL.Close()
	debris = append(debris, "wal-000009.wal")
	man, err := storage.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	live, err := os.OpenFile(filepath.Join(dir, man.WAL), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := live.Write([]byte{0x13, 0x37}); err != nil {
		t.Fatal(err)
	}
	live.Close()

	e2 := openFixtureStorage(t, dir, StorageOptions{})
	defer e2.Close()
	queryTitle(t, e2.Session(), "matrix")
	if !e2.Stats().WALTruncated {
		t.Fatal("torn WAL tail not reported")
	}
	for _, name := range debris {
		if _, err := os.Stat(filepath.Join(dir, name)); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("debris %s survived recovery", name)
		}
	}
}
